//! Congestion-aware L/Z-shape pattern global router.
//!
//! A CPU stand-in for the GPU-accelerated 3-D Z-shape router of Lin & Wong
//! (ICCAD 2022) that the paper invokes for congestion estimation. Every
//! net is decomposed into two-pin segments ([`crate::rsmt`]); each segment
//! is routed with the cheapest of its straight / L-shape / Z-shape
//! candidates under a logistic congestion cost, and its demand is
//! committed to the maps. A configurable number of rip-up-and-reroute
//! passes refines the solution against the accumulated demand.
//!
//! The routing machinery (decomposition, the pass/batch loop, the maze
//! phase) is factored into `pub(crate)` pieces shared with
//! [`crate::incremental`], so an incremental re-route that marks every net
//! dirty runs the exact instruction sequence of a full route — the basis
//! of the bit-exact equivalence the incremental router guarantees.

use crate::capacity::{CapacityMaps, CapacityOptions};
use crate::maps::RouteMaps;
use crate::maze::MazeStep;
use crate::rsmt;
use rdp_db::{Design, GridSpec, Map2d, NetId};
use rdp_obs::Collector;
use rdp_par::{chunk_len, fast_exp, Pool};

/// Configuration for [`GlobalRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Demand units consumed by one via in a G-cell.
    pub via_weight: f64,
    /// Cost charged per bend (via) when comparing candidates.
    pub via_cost: f64,
    /// Number of interior bend positions sampled per Z-shape family.
    pub z_candidates: usize,
    /// Logistic congestion-cost amplitude.
    pub cost_amplitude: f64,
    /// Logistic congestion-cost sharpness.
    pub cost_sharpness: f64,
    /// Routing passes; passes beyond the first rip up and reroute every
    /// net against the then-current demand.
    pub passes: usize,
    /// Vias added per pin for the connection from the pin layer up into
    /// the routing layers.
    pub pin_via: f64,
    /// Maximum number of overflow-crossing segments ripped up and
    /// re-routed with the A* maze router after the pattern passes
    /// (0 disables the maze phase; the evaluation flow enables it to let
    /// congested placements pay real detours).
    pub maze_rip_up: usize,
    /// Upper bound on the number of segments whose candidate paths are
    /// evaluated concurrently. Batches only group segments whose effect
    /// regions are pairwise disjoint, so any value (including 1, which
    /// forces fully serial routing) produces bit-identical results.
    pub parallel_batch: usize,
    /// Capacity derivation options.
    pub capacity: CapacityOptions,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            via_weight: 0.5,
            via_cost: 1.0,
            z_candidates: 4,
            cost_amplitude: 12.0,
            cost_sharpness: 6.0,
            passes: 2,
            pin_via: 0.5,
            maze_rip_up: 0,
            parallel_batch: 64,
            capacity: CapacityOptions::default(),
        }
    }
}

/// Result of routing a design.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Demand and capacity maps after routing.
    pub maps: RouteMaps,
    /// Total routed wirelength in microns (including maze detours).
    pub wirelength: f64,
    /// Total via count (bend vias + pin vias).
    pub vias: f64,
    /// Cached Eq. (3) congestion map.
    pub congestion: Map2d<f64>,
    /// Segments re-routed by the maze phase.
    pub maze_rerouted: usize,
    /// Extra wirelength (microns) spent on maze detours.
    pub detour_wirelength: f64,
}

impl RouteResult {
    /// Convenience: maximum congestion value.
    pub fn max_congestion(&self) -> f64 {
        self.congestion.max()
    }
}

/// One monotone run of a committed path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Run {
    /// True for a horizontal run.
    pub(crate) horizontal: bool,
    /// Row (for horizontal) or column (for vertical).
    pub(crate) fixed: usize,
    /// Inclusive start index along the run.
    pub(crate) from: usize,
    /// Inclusive end index along the run.
    pub(crate) to: usize,
}

/// A pattern route: at most three monotone runs plus the bend count,
/// stored inline. Candidate enumeration creates and discards dozens of
/// these per segment, so the fixed-size representation (no heap) matters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Path {
    runs: [Run; 3],
    nruns: u8,
    bends: u8,
}

impl Path {
    #[inline]
    fn one(r: Run) -> Path {
        Path {
            runs: [r, Run::default(), Run::default()],
            nruns: 1,
            bends: 0,
        }
    }

    #[inline]
    fn two(a: Run, b: Run) -> Path {
        Path {
            runs: [a, b, Run::default()],
            nruns: 2,
            bends: 1,
        }
    }

    #[inline]
    fn three(a: Run, b: Run, c: Run) -> Path {
        Path {
            runs: [a, b, c],
            nruns: 3,
            bends: 2,
        }
    }

    /// The populated runs.
    #[inline]
    pub(crate) fn runs(&self) -> &[Run] {
        &self.runs[..self.nruns as usize]
    }

    /// Bend count (0 for straight, 1 for L, 2 for Z).
    #[inline]
    pub(crate) fn bends(&self) -> usize {
        self.bends as usize
    }
}

/// Durable route of one two-pin segment: the pattern path, plus the maze
/// detour that replaced it (if any). Keeping the maze steps around lets a
/// later rip-up subtract exactly what was committed — the invariant the
/// incremental router's demand bookkeeping rests on.
#[derive(Debug, Clone, Default)]
pub(crate) struct SegRoute {
    /// Pattern route; cleared (empty) when a maze detour replaced it.
    pub(crate) path: Path,
    /// Maze steps, empty unless the maze phase re-routed this segment.
    pub(crate) maze: Vec<MazeStep>,
    /// Bends of the maze detour.
    pub(crate) maze_bends: usize,
    /// Extra wirelength (microns) the maze detour added.
    pub(crate) detour: f64,
}

impl SegRoute {
    /// Bounding box of the maze detour's cells (pattern paths stay inside
    /// their segment bbox; maze detours may not).
    pub(crate) fn maze_bbox(&self) -> Option<BinRect> {
        self.maze
            .iter()
            .map(|s| BinRect::of(s.cell, s.cell))
            .reduce(BinRect::union)
    }
}

/// Inclusive G-cell rectangle used for batch-conflict and dirty-region
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BinRect {
    pub(crate) x0: usize,
    pub(crate) x1: usize,
    pub(crate) y0: usize,
    pub(crate) y1: usize,
}

impl BinRect {
    pub(crate) fn of(a: (usize, usize), b: (usize, usize)) -> Self {
        BinRect {
            x0: a.0.min(b.0),
            x1: a.0.max(b.0),
            y0: a.1.min(b.1),
            y1: a.1.max(b.1),
        }
    }

    pub(crate) fn union(self, o: BinRect) -> BinRect {
        BinRect {
            x0: self.x0.min(o.x0),
            x1: self.x1.max(o.x1),
            y0: self.y0.min(o.y0),
            y1: self.y1.max(o.y1),
        }
    }

    pub(crate) fn intersects(&self, o: &BinRect) -> bool {
        self.x0 <= o.x1 && o.x0 <= self.x1 && self.y0 <= o.y1 && o.y0 <= self.y1
    }
}

/// A two-pin segment in G-cell coordinates.
pub(crate) type Seg = ((usize, usize), (usize, usize));

/// Per-net decomposition: the data a route needs about a net, cacheable
/// across routability iterations while the net's pins stand still.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetDecomp {
    /// Two-pin segments in G-cell coordinates.
    pub(crate) cells: Vec<Seg>,
    /// G-cells of the net's pins (one pin-via charge each).
    pub(crate) pin_bins: Vec<(usize, usize)>,
    /// Total pin-via demand of the net.
    pub(crate) pin_vias: f64,
    /// RSMT wirelength of the net in microns.
    pub(crate) net_len: f64,
    /// Bounding box over segment endpoints and pin bins — every G-cell
    /// the net's pattern routes or pin vias can touch.
    pub(crate) bbox: Option<BinRect>,
}

/// One two-pin routing task in the flattened per-pass work list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegTask {
    /// Net (request) index.
    ri: usize,
    /// Segment index within the net.
    si: usize,
    a: (usize, usize),
    b: (usize, usize),
    /// Bounding box of `a`/`b`: every straight/L/Z candidate lies inside.
    seg_rect: BinRect,
    /// For the first segment of a net: the net's overall segment bbox,
    /// covering every cell its rip-up can touch (pattern paths never leave
    /// their segment bbox).
    rip_rect: Option<BinRect>,
}

/// Adds (`sign = 1.0`) or subtracts (`sign = -1.0`) a pattern path's
/// demand. Wire demand is ±1 per cell, bend vias ±1 at run joints — all
/// dyadic, so add/subtract pairs cancel exactly.
pub(crate) fn apply_path(maps: &mut RouteMaps, path: &Path, sign: f64) {
    for run in path.runs() {
        for i in run.from..=run.to {
            if run.horizontal {
                maps.h_demand[(i, run.fixed)] += sign;
            } else {
                maps.v_demand[(run.fixed, i)] += sign;
            }
        }
    }
    // Bend vias at run joints: charged at the start cell of each
    // follow-up run.
    for w in path.runs().windows(2) {
        let joint = joint_cell(&w[0], &w[1]);
        maps.via_demand[joint] += sign;
    }
}

/// Adds or subtracts a maze detour's demand: ±1 wire per step in its
/// direction, ±1 via at each direction change.
fn apply_maze(maps: &mut RouteMaps, steps: &[MazeStep], sign: f64) {
    for step in steps {
        if step.horizontal {
            maps.h_demand[step.cell] += sign;
        } else {
            maps.v_demand[step.cell] += sign;
        }
    }
    let mut prev_dir: Option<bool> = None;
    for step in steps {
        if let Some(pd) = prev_dir {
            if pd != step.horizontal {
                maps.via_demand[step.cell] += sign;
            }
        }
        prev_dir = Some(step.horizontal);
    }
}

/// Adds or subtracts everything a committed segment put into the maps.
pub(crate) fn apply_seg(maps: &mut RouteMaps, seg: &SegRoute, sign: f64) {
    apply_path(maps, &seg.path, sign);
    apply_maze(maps, &seg.maze, sign);
}

/// Flattens per-net segments into the task list the pass loop walks.
/// `cells[ri]` are net `ri`'s segments; task order is flat (net, segment)
/// order, which fixes the serial commit order.
pub(crate) fn build_tasks(cells: &[&[Seg]]) -> Vec<SegTask> {
    let mut tasks: Vec<SegTask> = Vec::new();
    for (ri, segs) in cells.iter().enumerate() {
        let net_rect = segs
            .iter()
            .map(|&(a, b)| BinRect::of(a, b))
            .reduce(BinRect::union);
        for (si, &(a, b)) in segs.iter().enumerate() {
            tasks.push(SegTask {
                ri,
                si,
                a,
                b,
                seg_rect: BinRect::of(a, b),
                rip_rect: if si == 0 { net_rect } else { None },
            });
        }
    }
    tasks
}

/// Builds a [`RouteResult`] from durable per-net state. All sums run in
/// flat net order, so a full route and an incremental route over the same
/// state produce bitwise-identical totals.
pub(crate) fn summarize(
    maps: RouteMaps,
    decomp: &[NetDecomp],
    committed: &[Vec<SegRoute>],
    maze_rerouted: usize,
) -> RouteResult {
    let mut wirelength = 0.0;
    let mut pin_vias = 0.0;
    for d in decomp {
        wirelength += d.net_len;
        pin_vias += d.pin_vias;
    }
    let mut bend_vias = 0.0;
    let mut detour = 0.0;
    for seg in committed.iter().flatten() {
        bend_vias += seg.path.bends() as f64 + seg.maze_bends as f64;
        detour += seg.detour;
    }
    let congestion = maps.congestion_eq3();
    RouteResult {
        maps,
        wirelength: wirelength + detour,
        vias: bend_vias + pin_vias,
        congestion,
        maze_rerouted,
        detour_wirelength: detour,
    }
}

/// Congestion-aware pattern router.
#[derive(Debug, Clone, Default)]
pub struct GlobalRouter {
    cfg: RouterConfig,
}

impl GlobalRouter {
    /// Creates a router with the given configuration.
    pub fn new(cfg: RouterConfig) -> Self {
        GlobalRouter { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Routes the design on its G-cell grid.
    pub fn route(&self, design: &Design) -> RouteResult {
        let grid = design.gcell_grid();
        self.route_on_grid(design, &grid)
    }

    /// [`route`](GlobalRouter::route) with observability: the decomposition,
    /// per-pass rip-up batches, and the maze phase are recorded as spans,
    /// plus batch/maze counters. Results are identical to [`route`].
    pub fn route_obs(&self, design: &Design, obs: &Collector) -> RouteResult {
        let grid = design.gcell_grid();
        self.route_on_grid_obs(design, &grid, obs)
    }

    /// Routes the design on an arbitrary grid (used by the evaluation flow
    /// at finer granularity).
    ///
    /// Net decomposition and candidate-path evaluation run on the global
    /// [`Pool`]; demand commits stay sequential in net order, and parallel
    /// batches only group segments with disjoint effect regions, so the
    /// result is bit-identical to a fully serial route for any thread
    /// count.
    pub fn route_on_grid(&self, design: &Design, grid: &GridSpec) -> RouteResult {
        self.route_on_grid_obs(design, grid, &Collector::disabled())
    }

    /// [`route_on_grid`](GlobalRouter::route_on_grid) with observability.
    pub fn route_on_grid_obs(
        &self,
        design: &Design,
        grid: &GridSpec,
        obs: &Collector,
    ) -> RouteResult {
        let pool = Pool::global();
        let caps = CapacityMaps::build_on_grid(design, grid, &self.cfg.capacity);
        self.route_full_with_caps(design, grid, caps, pool, obs).0
    }

    /// Full route with an externally supplied capacity model. Also returns
    /// the durable per-net state the incremental router retains between
    /// iterations; [`route_on_grid_obs`](GlobalRouter::route_on_grid_obs)
    /// simply drops it.
    pub(crate) fn route_full_with_caps(
        &self,
        design: &Design,
        grid: &GridSpec,
        caps: CapacityMaps,
        pool: Pool,
        obs: &Collector,
    ) -> (RouteResult, Vec<NetDecomp>, Vec<Vec<SegRoute>>) {
        let mut maps = RouteMaps::new(caps, self.cfg.via_weight);
        let ids: Vec<usize> = (0..design.num_nets()).collect();
        let decomp = self.decompose_ids(design, grid, &ids, pool, obs);

        // Commit pin vias once in net order, independent of pass structure.
        for d in &decomp {
            for &pb in &d.pin_bins {
                maps.via_demand[pb] += self.cfg.pin_via;
            }
        }

        let cells: Vec<&[Seg]> = decomp.iter().map(|d| d.cells.as_slice()).collect();
        let tasks = build_tasks(&cells);
        let mut committed: Vec<Vec<SegRoute>> = vec![Vec::new(); decomp.len()];
        self.route_tasks(&mut maps, &tasks, &mut committed, pool, obs);
        let (maze_rerouted, _) = self.maze_phase(&mut maps, grid, &cells, &mut committed, obs);
        obs.counter_add("route_maze_rerouted", maze_rerouted as u64);
        let result = summarize(maps, &decomp, &committed, maze_rerouted);
        (result, decomp, committed)
    }

    /// Decomposes one net into two-pin G-cell segments.
    fn decompose_net(&self, design: &Design, grid: &GridSpec, ni: usize) -> NetDecomp {
        let pins: Vec<_> = design
            .net(NetId::from_index(ni))
            .pins
            .iter()
            .map(|&p| design.pin_position(p))
            .collect();
        let segs = rsmt::decompose(&pins);
        let net_len = rsmt::total_length(&segs);
        let cells: Vec<Seg> = segs
            .iter()
            .map(|s| (grid.bin_of(s.a), grid.bin_of(s.b)))
            .collect();
        let pin_bins: Vec<_> = pins.iter().map(|p| grid.bin_of(*p)).collect();
        let bbox = cells
            .iter()
            .map(|&(a, b)| BinRect::of(a, b))
            .chain(pin_bins.iter().map(|&p| BinRect::of(p, p)))
            .reduce(BinRect::union);
        NetDecomp {
            cells,
            pin_vias: self.cfg.pin_via * pins.len() as f64,
            pin_bins,
            net_len,
            bbox,
        }
    }

    /// Decomposes the given nets in parallel (fixed chunking, results in
    /// `ids` order).
    pub(crate) fn decompose_ids(
        &self,
        design: &Design,
        grid: &GridSpec,
        ids: &[usize],
        pool: Pool,
        obs: &Collector,
    ) -> Vec<NetDecomp> {
        let _span = obs.span("route_decompose", "route");
        let chunk = chunk_len(ids.len(), 64, 32);
        pool.map_chunks(ids.len(), chunk, |_ci, range| {
            range
                .map(|k| self.decompose_net(design, grid, ids[k]))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The pattern pass loop: pass 0 routes every task in flat order,
    /// passes 1.. rip up and reroute. `committed[ri]` must start empty and
    /// receives net `ri`'s segment routes. Batch scratch is hoisted and
    /// reused across all batches of all passes.
    pub(crate) fn route_tasks(
        &self,
        maps: &mut RouteMaps,
        tasks: &[SegTask],
        committed: &mut [Vec<SegRoute>],
        pool: Pool,
        obs: &Collector,
    ) {
        let batch_cap = self.cfg.parallel_batch.max(1);
        let mut rects: Vec<BinRect> = Vec::new();
        let mut paths: Vec<Path> = Vec::new();
        for pass in 0..self.cfg.passes.max(1) {
            let _pass_span = obs.span_iter("route_pass", "route", pass as i64);
            let mut batches_this_pass = 0u64;
            let mut i = 0;
            while i < tasks.len() {
                // Grow a batch of segments whose effect regions (candidate
                // bbox, plus this pass's rip-up region for a net's first
                // segment) are pairwise disjoint. Disjointness means no
                // batch member's commit or rip-up can change another
                // member's candidate costs, so evaluating the whole batch
                // against the frozen maps is exactly the serial result.
                rects.clear();
                let mut j = i;
                'grow: while j < tasks.len() && j - i < batch_cap {
                    let t = &tasks[j];
                    let rip = if pass > 0 { t.rip_rect } else { None };
                    if j > i {
                        for r in &rects {
                            if t.seg_rect.intersects(r) || rip.map_or(false, |o| o.intersects(r)) {
                                break 'grow;
                            }
                        }
                    }
                    rects.push(t.seg_rect);
                    if let Some(r) = rip {
                        rects.push(r);
                    }
                    j += 1;
                }

                // Rip up batch nets in order (first-segment tasks only).
                if pass > 0 {
                    for t in &tasks[i..j] {
                        if t.si == 0 {
                            for seg in &committed[t.ri] {
                                debug_assert!(seg.maze.is_empty());
                                apply_path(maps, &seg.path, -1.0);
                            }
                            committed[t.ri].clear();
                        }
                    }
                }

                // Evaluate candidate paths against the frozen maps.
                let batch = &tasks[i..j];
                paths.clear();
                if batch.len() >= 16 && pool.threads() > 1 {
                    let frozen: &RouteMaps = maps;
                    let parts =
                        pool.map_chunks(batch.len(), chunk_len(batch.len(), 8, 4), |_ci, range| {
                            range
                                .map(|k| self.best_path(frozen, batch[k].a, batch[k].b))
                                .collect::<Vec<_>>()
                        });
                    for part in parts {
                        paths.extend(part);
                    }
                } else {
                    let frozen: &RouteMaps = maps;
                    paths.extend(batch.iter().map(|t| self.best_path(frozen, t.a, t.b)));
                }

                // Commit sequentially in flat (net, segment) order.
                for (t, &path) in batch.iter().zip(paths.iter()) {
                    apply_path(maps, &path, 1.0);
                    debug_assert_eq!(committed[t.ri].len(), t.si);
                    committed[t.ri].push(SegRoute {
                        path,
                        ..SegRoute::default()
                    });
                }
                batches_this_pass += 1;
                if obs.is_enabled() {
                    obs.observe("route_batch_size", (j - i) as f64);
                }
                i = j;
            }
            obs.counter_add("route_batches", batches_this_pass);
        }
    }

    /// Maze phase: rips up the worst overflow-crossing committed segments
    /// and lets A* find detours, recording the steps in the segment's
    /// [`SegRoute`]. Returns the reroute count and detour wirelength added
    /// by this call. No-op when `maze_rip_up` is 0.
    pub(crate) fn maze_phase(
        &self,
        maps: &mut RouteMaps,
        grid: &GridSpec,
        cells: &[&[Seg]],
        committed: &mut [Vec<SegRoute>],
        obs: &Collector,
    ) -> (usize, f64) {
        if self.cfg.maze_rip_up == 0 {
            return (0, 0.0);
        }
        let _maze_span = obs.span("route_maze", "route");
        let mut maze_rerouted = 0usize;
        let mut detour_added = 0.0;
        // Score each committed segment by the overflow it crosses.
        let mut scored: Vec<(f64, usize, usize)> = Vec::new(); // (score, req idx, seg idx)
        for (ri, segs) in committed.iter().enumerate() {
            for (si, seg) in segs.iter().enumerate() {
                let mut score = 0.0;
                for run in seg.path.runs() {
                    for i in run.from..=run.to {
                        let (ix, iy) = if run.horizontal {
                            (i, run.fixed)
                        } else {
                            (run.fixed, i)
                        };
                        score += (maps.demand_at(ix, iy) - maps.capacity_at(ix, iy)).max(0.0);
                    }
                }
                if score > 0.0 {
                    scored.push((score, ri, si));
                }
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.truncate(self.cfg.maze_rip_up);

        let pitch = 0.5 * (grid.bin_w() + grid.bin_h());
        for (_, ri, si) in scored {
            let old = committed[ri][si].path;
            apply_path(maps, &old, -1.0);
            let (a, b) = cells[ri][si];
            let found = {
                let frozen: &RouteMaps = maps;
                let cost = |ix: usize, iy: usize, horizontal: bool| {
                    self.cell_cost(frozen, ix, iy, horizontal)
                };
                crate::maze::astar(frozen, a, b, &cost, self.cfg.via_cost)
            };
            match found {
                Some(mp) => {
                    apply_maze(maps, &mp.steps, 1.0);
                    let manhattan =
                        (a.0 as f64 - b.0 as f64).abs() + (a.1 as f64 - b.1 as f64).abs();
                    let extra = (mp.steps.len() as f64 - manhattan).max(0.0) * pitch;
                    detour_added += extra;
                    maze_rerouted += 1;
                    let seg = &mut committed[ri][si];
                    seg.path = Path::default(); // consumed
                    seg.maze_bends = mp.bends;
                    seg.detour = extra;
                    seg.maze = mp.steps;
                }
                None => {
                    // Restore the pattern route (degenerate grids only).
                    apply_path(maps, &old, 1.0);
                }
            }
        }
        (maze_rerouted, detour_added)
    }

    /// Logistic congestion cost of pushing one more unit of demand through
    /// a G-cell in the given direction. Uses the deterministic inlinable
    /// [`fast_exp`] so the surrounding loops vectorize.
    #[inline]
    fn cell_cost(&self, maps: &RouteMaps, ix: usize, iy: usize, horizontal: bool) -> f64 {
        let (dem, cap) = if horizontal {
            (maps.h_demand[(ix, iy)], maps.caps.h[(ix, iy)])
        } else {
            (maps.v_demand[(ix, iy)], maps.caps.v[(ix, iy)])
        };
        let u = (dem + 1.0 + maps.via_weight * maps.via_demand[(ix, iy)]) / cap;
        1.0 + self.cfg.cost_amplitude / (1.0 + fast_exp(-self.cfg.cost_sharpness * (u - 1.0)))
    }

    /// Cost of one monotone run. Horizontal runs read contiguous row
    /// slices (the hot case: repeated index math dominates the scalar
    /// version); vertical runs fall back to per-cell indexing.
    fn run_cost(&self, maps: &RouteMaps, run: &Run) -> f64 {
        let mut acc = 0.0;
        if run.horizontal {
            let h = maps.h_demand.row(run.fixed);
            let ch = maps.caps.h.row(run.fixed);
            let via = maps.via_demand.row(run.fixed);
            let w = maps.via_weight;
            for i in run.from..=run.to {
                let u = (h[i] + 1.0 + w * via[i]) / ch[i];
                acc += 1.0
                    + self.cfg.cost_amplitude
                        / (1.0 + fast_exp(-self.cfg.cost_sharpness * (u - 1.0)));
            }
        } else {
            for i in run.from..=run.to {
                acc += self.cell_cost(maps, run.fixed, i, false);
            }
        }
        acc
    }

    fn path_cost(&self, maps: &RouteMaps, path: &Path) -> f64 {
        let mut acc = 0.0;
        for r in path.runs() {
            acc += self.run_cost(maps, r);
        }
        acc + self.cfg.via_cost * path.bends as f64
    }

    /// Enumerates straight / L / Z candidates and returns the cheapest.
    ///
    /// Candidates are evaluated in a fixed order with `<=` replacement, so
    /// the **last** minimum wins — the same tie-break as the previous
    /// `Iterator::min_by` implementation, without materializing the
    /// candidate list.
    fn best_path(&self, maps: &RouteMaps, a: (usize, usize), b: (usize, usize)) -> Path {
        let (ax, ay) = a;
        let (bx, by) = b;
        if ax == bx && ay == by {
            return Path::default();
        }
        if ay == by {
            return Path::one(hrun(ay, ax, bx));
        }
        if ax == bx {
            return Path::one(vrun(ax, ay, by));
        }

        // L-shapes.
        let mut best = Path::two(hrun(ay, ax, bx), vrun(bx, ay, by));
        let mut best_cost = self.path_cost(maps, &best);
        let cand = Path::two(vrun(ax, ay, by), hrun(by, ax, bx));
        let c = self.path_cost(maps, &cand);
        if c <= best_cost {
            best = cand;
            best_cost = c;
        }
        // Z-shapes: H-V-H with interior bend column, V-H-V with interior
        // bend row.
        let (xlo, xhi) = (ax.min(bx), ax.max(bx));
        let (ylo, yhi) = (ay.min(by), ay.max(by));
        for t in 1..=self.cfg.z_candidates {
            let xm = xlo + t * (xhi - xlo) / (self.cfg.z_candidates + 1);
            if xm > xlo && xm < xhi {
                let cand = Path::three(hrun(ay, ax, xm), vrun(xm, ay, by), hrun(by, xm, bx));
                let c = self.path_cost(maps, &cand);
                if c <= best_cost {
                    best = cand;
                    best_cost = c;
                }
            }
            let ym = ylo + t * (yhi - ylo) / (self.cfg.z_candidates + 1);
            if ym > ylo && ym < yhi {
                let cand = Path::three(vrun(ax, ay, ym), hrun(ym, ax, bx), vrun(bx, ym, by));
                let c = self.path_cost(maps, &cand);
                if c <= best_cost {
                    best = cand;
                    best_cost = c;
                }
            }
        }
        best
    }
}

fn hrun(y: usize, x0: usize, x1: usize) -> Run {
    Run {
        horizontal: true,
        fixed: y,
        from: x0.min(x1),
        to: x0.max(x1),
    }
}

fn vrun(x: usize, y0: usize, y1: usize) -> Run {
    Run {
        horizontal: false,
        fixed: x,
        from: y0.min(y1),
        to: y0.max(y1),
    }
}

/// The G-cell where two consecutive runs meet.
fn joint_cell(a: &Run, b: &Run) -> (usize, usize) {
    // One is horizontal, the other vertical: the joint is (v.fixed, h.fixed).
    if a.horizontal {
        (b.fixed, a.fixed)
    } else {
        (a.fixed, b.fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};

    fn two_pin_design(a: Point, b: Point) -> Design {
        let mut db = DesignBuilder::new("t", Rect::new(0.0, 0.0, 80.0, 80.0));
        let c1 = db.add_cell(Cell::std("a", 1.0, 1.0), a);
        let c2 = db.add_cell(Cell::std("b", 1.0, 1.0), b);
        db.add_net("n", vec![(c1, Point::default()), (c2, Point::default())]);
        db.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
        db.build().unwrap()
    }

    #[test]
    fn straight_segment_consumes_h_demand_only() {
        let d = two_pin_design(Point::new(5.0, 45.0), Point::new(75.0, 45.0));
        let r = GlobalRouter::default().route(&d);
        // Row 4 G-cells 0..=7 each get 1 unit of horizontal demand.
        for ix in 0..8 {
            assert_eq!(r.maps.h_demand[(ix, 4)], 1.0, "ix={ix}");
        }
        assert_eq!(r.maps.v_demand.sum(), 0.0);
        // Only pin vias, no bends.
        assert_eq!(r.vias, 1.0);
        assert!((r.wirelength - 70.0).abs() < 1e-9);
    }

    #[test]
    fn l_or_z_route_conserves_demand() {
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(75.0, 75.0));
        let r = GlobalRouter::default().route(&d);
        // A monotone path spans 8 columns + 8 rows; the joint cell is
        // counted once per direction it is traversed in.
        let total = r.maps.h_demand.sum() + r.maps.v_demand.sum();
        // 8 horizontal cells + 8 vertical cells, with the bends double
        // counted once per bend (each bend cell carries both H and V).
        assert!(total >= 16.0 && total <= 18.0, "total demand {total}");
        assert!(r.vias >= 2.0); // 1 pin via total + >=1 bend
    }

    #[test]
    fn same_gcell_net_adds_no_wire_demand() {
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let r = GlobalRouter::default().route(&d);
        assert_eq!(r.maps.h_demand.sum(), 0.0);
        assert_eq!(r.maps.v_demand.sum(), 0.0);
        assert_eq!(r.maps.via_demand.sum(), 1.0); // two pin vias à 0.5
    }

    #[test]
    fn router_avoids_congested_column() {
        // Jam the direct column with fake demand, then route a vertical
        // segment: with Z-candidates the router can sidestep; since a
        // vertical segment has only the straight candidate, use a diagonal
        // segment whose L candidates differ in congestion.
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(75.0, 75.0));
        let grid = d.gcell_grid();
        let caps = CapacityMaps::build_on_grid(&d, &grid, &CapacityOptions::default());
        let mut maps = RouteMaps::new(caps, 0.5);
        // Make column x=0 (the V leg of the VH L-shape) very expensive.
        for iy in 0..8 {
            maps.v_demand[(0, iy)] = 500.0;
        }
        let router = GlobalRouter::default();
        let path = router.best_path(&maps, (0, 0), (7, 7));
        // The chosen path must not run vertically along column 0.
        for run in path.runs() {
            assert!(
                run.horizontal || run.fixed != 0,
                "path used congested column: {path:?}"
            );
        }
    }

    #[test]
    fn multi_pin_net_routes_all_mst_edges() {
        let mut db = DesignBuilder::new("t", Rect::new(0.0, 0.0, 80.0, 80.0));
        let c1 = db.add_cell(Cell::std("a", 1.0, 1.0), Point::new(5.0, 5.0));
        let c2 = db.add_cell(Cell::std("b", 1.0, 1.0), Point::new(75.0, 5.0));
        let c3 = db.add_cell(Cell::std("c", 1.0, 1.0), Point::new(5.0, 75.0));
        db.add_net(
            "n",
            vec![
                (c1, Point::default()),
                (c2, Point::default()),
                (c3, Point::default()),
            ],
        );
        db.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
        let d = db.build().unwrap();
        let r = GlobalRouter::default().route(&d);
        assert!((r.wirelength - 140.0).abs() < 1e-9);
        // Both MST edges are axis-aligned: 8+8 cells of wire demand.
        assert_eq!(r.maps.h_demand.sum() + r.maps.v_demand.sum(), 16.0);
    }

    #[test]
    fn second_pass_never_worse() {
        // With many overlapping nets, pass 2 should not increase overflow.
        let mut db = DesignBuilder::new("t", Rect::new(0.0, 0.0, 80.0, 80.0));
        let mut ids = Vec::new();
        for i in 0..40 {
            let y = 35.0 + (i % 4) as f64;
            let a = db.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(5.0, y));
            let b = db.add_cell(
                Cell::std(format!("b{i}"), 1.0, 1.0),
                Point::new(75.0, 75.0 - y),
            );
            ids.push((a, b));
        }
        for (i, (a, b)) in ids.iter().enumerate() {
            db.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*b, Point::default())],
            );
        }
        db.routing(RoutingSpec::uniform(4, 3.0, 8, 8));
        let d = db.build().unwrap();
        let one_pass = GlobalRouter::new(RouterConfig {
            passes: 1,
            ..Default::default()
        })
        .route(&d);
        let two_pass = GlobalRouter::new(RouterConfig {
            passes: 2,
            ..Default::default()
        })
        .route(&d);
        assert!(
            two_pass.maps.total_overflow() <= one_pass.maps.total_overflow() + 1e-9,
            "pass2 {} vs pass1 {}",
            two_pass.maps.total_overflow(),
            one_pass.maps.total_overflow()
        );
    }

    #[test]
    fn congestion_map_dimensions_match_grid() {
        let d = two_pin_design(Point::new(5.0, 5.0), Point::new(75.0, 75.0));
        let r = GlobalRouter::default().route(&d);
        assert_eq!(r.congestion.nx(), 8);
        assert_eq!(r.congestion.ny(), 8);
        assert!(r.max_congestion() >= 0.0);
    }
}
