//! Incremental rip-up-and-reroute between routability iterations.
//!
//! A routability-driven placement flow re-routes the whole design every
//! iteration even though most cells barely move between router calls.
//! [`IncrementalRouter`] retains the previous route (per-net decomposition,
//! committed segment routes, demand maps, and the position-independent
//! capacity model) and, on the next call, rips up and re-routes only the
//! **dirty** nets:
//!
//! * nets owning a pin on a cell that moved beyond
//!   [`IncrementalConfig::move_threshold`], and
//! * nets whose effect region (segment/pin bounding box, plus any maze
//!   detour's cells) intersects a G-cell touched by a moved cell.
//!
//! Demand bookkeeping is exact: pattern and maze commits are ±1 wire /
//! ±1 bend-via per cell and ±`pin_via` per pin — with the default dyadic
//! `pin_via = 0.5` every rip-up restores the exact bits the commit added,
//! so incremental state never drifts from what a replay of the committed
//! routes would produce (checked by
//! [`IncrementalRouter::verify_consistency`]).
//!
//! **Equivalence contract**: an incremental route that marks *every* net
//! dirty executes the exact instruction sequence of
//! [`GlobalRouter::route_on_grid_obs`] — same decomposition, same flat
//! (net, segment) task order, same pass/batch machinery, same maze phase —
//! and therefore produces bitwise-identical maps and totals. Periodic
//! ([`IncrementalConfig::resync_every`]) and drift-triggered
//! ([`IncrementalConfig::drift_frac`]) full re-routes rely on this: a
//! resync is just an all-dirty route from a fresh state.

use crate::capacity::CapacityMaps;
use crate::maps::RouteMaps;
use crate::router::{
    apply_seg, build_tasks, summarize, BinRect, GlobalRouter, NetDecomp, RouteResult, Seg, SegRoute,
};
use rdp_db::{Design, GridSpec, NetId, Point};
use rdp_obs::Collector;
use rdp_par::Pool;

/// Tuning for [`IncrementalRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalConfig {
    /// Distance (microns, per axis) a cell must move since its last-routed
    /// anchor before it dirties its nets. `0.0` dirties on any movement.
    /// Sub-threshold drift accumulates against the anchor, so a slowly
    /// creeping cell eventually crosses the threshold.
    pub move_threshold: f64,
    /// Run a full re-route every this many router calls (`0` disables the
    /// periodic resync; the drift trigger still applies).
    pub resync_every: usize,
    /// Fraction of dirty nets above which the call falls back to a full
    /// re-route (rip-up bookkeeping would cost more than it saves).
    pub drift_frac: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            move_threshold: 0.0,
            resync_every: 16,
            drift_frac: 0.5,
        }
    }
}

/// Why an [`IncrementalRouter`] call routed the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncReason {
    /// The call routed incrementally — no full re-route happened.
    Incremental,
    /// First call, or state was dropped via [`IncrementalRouter::reset`].
    First,
    /// The grid or netlist shape changed since the retained state.
    ShapeChanged,
    /// The [`IncrementalConfig::resync_every`] cadence came due.
    Periodic,
    /// The dirty fraction exceeded [`IncrementalConfig::drift_frac`].
    Drift,
}

impl ResyncReason {
    /// Stable lowercase label for telemetry and log messages.
    pub fn label(self) -> &'static str {
        match self {
            ResyncReason::Incremental => "incremental",
            ResyncReason::First => "first",
            ResyncReason::ShapeChanged => "shape-changed",
            ResyncReason::Periodic => "periodic",
            ResyncReason::Drift => "drift",
        }
    }
}

/// What the last [`IncrementalRouter`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Nets ripped up and re-routed.
    pub dirty_nets: usize,
    /// Total nets in the design.
    pub total_nets: usize,
    /// True when the call performed a full re-route (first call, periodic
    /// or drift-triggered resync, or changed grid/netlist).
    pub full_resync: bool,
    /// Why: [`ResyncReason::Incremental`] when `full_resync` is false,
    /// the resync trigger otherwise.
    pub reason: ResyncReason,
}

/// Retained state between router calls.
#[derive(Debug, Clone)]
struct IncState {
    grid: GridSpec,
    maps: RouteMaps,
    /// Cell positions at which each cell's nets were last routed.
    anchors: Vec<Point>,
    decomp: Vec<NetDecomp>,
    committed: Vec<Vec<SegRoute>>,
    /// Net ids incident to each cell (netlist topology, fixed per design).
    nets_of_cell: Vec<Vec<u32>>,
    routes_since_full: usize,
    /// Maze-reroute count of the last call (reported in summaries).
    last_maze: usize,
}

/// A [`GlobalRouter`] wrapper that re-routes only dirty nets between
/// calls. Assumes a fixed netlist and grid — positions are the only thing
/// allowed to change between calls; anything else triggers a full
/// re-route.
#[derive(Debug, Clone)]
pub struct IncrementalRouter {
    router: GlobalRouter,
    icfg: IncrementalConfig,
    state: Option<IncState>,
    last: Option<IncrementalStats>,
}

impl IncrementalRouter {
    /// Wraps `router` with incremental state tracking.
    pub fn new(router: GlobalRouter, icfg: IncrementalConfig) -> Self {
        IncrementalRouter {
            router,
            icfg,
            state: None,
            last: None,
        }
    }

    /// The wrapped pattern router.
    pub fn router(&self) -> &GlobalRouter {
        &self.router
    }

    /// The incremental tuning.
    pub fn config(&self) -> &IncrementalConfig {
        &self.icfg
    }

    /// What the last call did, if any call happened yet.
    pub fn last_stats(&self) -> Option<IncrementalStats> {
        self.last
    }

    /// Drops all retained state: the next call performs a full re-route.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Routes the design on its G-cell grid (incremental when possible).
    pub fn route(&mut self, design: &Design) -> RouteResult {
        self.route_obs(design, &Collector::disabled())
    }

    /// [`route`](IncrementalRouter::route) with observability.
    pub fn route_obs(&mut self, design: &Design, obs: &Collector) -> RouteResult {
        let grid = design.gcell_grid();
        self.route_on_grid_obs(design, &grid, obs)
    }

    /// Routes on an arbitrary grid, re-routing only dirty nets when the
    /// retained state matches the design/grid and no resync is due.
    pub fn route_on_grid_obs(
        &mut self,
        design: &Design,
        grid: &GridSpec,
        obs: &Collector,
    ) -> RouteResult {
        let pool = Pool::global();
        let needs_full = match &self.state {
            None => Some(ResyncReason::First),
            Some(s)
                if s.grid != *grid
                    || s.anchors.len() != design.num_cells()
                    || s.decomp.len() != design.num_nets() =>
            {
                Some(ResyncReason::ShapeChanged)
            }
            Some(s)
                if self.icfg.resync_every > 0
                    && s.routes_since_full + 1 >= self.icfg.resync_every =>
            {
                Some(ResyncReason::Periodic)
            }
            Some(_) => None,
        };
        if let Some(reason) = needs_full {
            return self.full(design, grid, pool, obs, reason);
        }
        self.incremental(design, grid, pool, obs)
    }

    /// Full route: run the shared core, capture durable state.
    fn full(
        &mut self,
        design: &Design,
        grid: &GridSpec,
        pool: Pool,
        obs: &Collector,
        reason: ResyncReason,
    ) -> RouteResult {
        // The capacity model depends only on fixed geometry (macros,
        // obstructions, rails, layer specs) — reuse it across resyncs on
        // the same grid instead of rebuilding.
        let caps = match &self.state {
            Some(s)
                if s.grid == *grid
                    && s.anchors.len() == design.num_cells()
                    && s.decomp.len() == design.num_nets() =>
            {
                s.maps.caps.clone()
            }
            _ => CapacityMaps::build_on_grid(design, grid, &self.router.config().capacity),
        };
        let (result, decomp, committed) = self
            .router
            .route_full_with_caps(design, grid, caps, pool, obs);
        let mut nets_of_cell: Vec<Vec<u32>> = vec![Vec::new(); design.num_cells()];
        for ni in 0..design.num_nets() {
            for &pid in &design.net(NetId::from_index(ni)).pins {
                nets_of_cell[design.pin(pid).cell.index()].push(ni as u32);
            }
        }
        let total = design.num_nets();
        self.state = Some(IncState {
            grid: *grid,
            maps: result.maps.clone(),
            anchors: design.positions().to_vec(),
            decomp,
            committed,
            nets_of_cell,
            routes_since_full: 0,
            last_maze: result.maze_rerouted,
        });
        self.last = Some(IncrementalStats {
            dirty_nets: total,
            total_nets: total,
            full_resync: true,
            reason,
        });
        obs.counter_add("route_incremental_full", 1);
        result
    }

    /// Incremental route: rip up and re-route only the dirty nets.
    fn incremental(
        &mut self,
        design: &Design,
        grid: &GridSpec,
        pool: Pool,
        obs: &Collector,
    ) -> RouteResult {
        let (moved, dirty) = {
            let state = self.state.as_ref().expect("state checked by caller");
            let thr = self.icfg.move_threshold;
            let positions = design.positions();
            let mut moved: Vec<usize> = Vec::new();
            for (i, (p, a)) in positions.iter().zip(state.anchors.iter()).enumerate() {
                if (p.x - a.x).abs() > thr || (p.y - a.y).abs() > thr {
                    moved.push(i);
                }
            }
            let n_nets = state.decomp.len();
            let mut dirty_flag = vec![false; n_nets];
            for &ci in &moved {
                for &ni in &state.nets_of_cell[ci] {
                    dirty_flag[ni as usize] = true;
                }
            }

            // G-cell mask of moved cells (old anchor bin + new bin), with
            // per-row prefix sums so each net-bbox query is O(rows).
            let (nx, ny) = (grid.nx(), grid.ny());
            let mut mask = vec![0u32; nx * ny];
            for &ci in &moved {
                let (ox, oy) = grid.bin_of(state.anchors[ci]);
                let (mx, my) = grid.bin_of(positions[ci]);
                mask[oy * nx + ox] = 1;
                mask[my * nx + mx] = 1;
            }
            let mut pre = vec![0u32; (nx + 1) * ny];
            for iy in 0..ny {
                let mut acc = 0u32;
                let row = &mask[iy * nx..(iy + 1) * nx];
                let out = &mut pre[iy * (nx + 1)..(iy + 1) * (nx + 1)];
                for (ix, &m) in row.iter().enumerate() {
                    acc += m;
                    out[ix + 1] = acc;
                }
            }
            let rect_touches_mask = |r: &BinRect| -> bool {
                for iy in r.y0..=r.y1 {
                    let row = &pre[iy * (nx + 1)..(iy + 1) * (nx + 1)];
                    if row[r.x1 + 1] > row[r.x0] {
                        return true;
                    }
                }
                false
            };
            for (ni, flag) in dirty_flag.iter_mut().enumerate() {
                if *flag {
                    continue;
                }
                let mut bbox = state.decomp[ni].bbox;
                for seg in &state.committed[ni] {
                    if let Some(mb) = seg.maze_bbox() {
                        bbox = Some(bbox.map_or(mb, |b| b.union(mb)));
                    }
                }
                if let Some(b) = bbox {
                    if rect_touches_mask(&b) {
                        *flag = true;
                    }
                }
            }
            let dirty: Vec<usize> = dirty_flag
                .iter()
                .enumerate()
                .filter_map(|(ni, &f)| f.then_some(ni))
                .collect();
            (moved, dirty)
        };

        let n_nets = design.num_nets();
        if dirty.len() as f64 > self.icfg.drift_frac * n_nets as f64 {
            return self.full(design, grid, pool, obs, ResyncReason::Drift);
        }

        let _span = obs.span("route_incremental", "route");
        let pin_via = self.router.config().pin_via;
        let state = self.state.as_mut().expect("state checked by caller");

        // Rip up dirty nets in ascending net order: committed demand, then
        // pin vias.
        for &ni in &dirty {
            for seg in &state.committed[ni] {
                apply_seg(&mut state.maps, seg, -1.0);
            }
            state.committed[ni].clear();
            for &pb in &state.decomp[ni].pin_bins {
                state.maps.via_demand[pb] -= pin_via;
            }
        }

        // Re-decompose at current positions; commit pin vias before any
        // routing, in net order (mirroring the full route's prologue).
        let fresh_decomp = self.router.decompose_ids(design, grid, &dirty, pool, obs);
        for (&ni, d) in dirty.iter().zip(fresh_decomp.into_iter()) {
            for &pb in &d.pin_bins {
                state.maps.via_demand[pb] += pin_via;
            }
            state.decomp[ni] = d;
        }
        for &ci in &moved {
            state.anchors[ci] = design.positions()[ci];
        }

        // Route the dirty nets with the shared pass/batch machinery.
        let cells: Vec<&[Seg]> = dirty
            .iter()
            .map(|&ni| state.decomp[ni].cells.as_slice())
            .collect();
        let tasks = build_tasks(&cells);
        let mut fresh: Vec<Vec<SegRoute>> = vec![Vec::new(); dirty.len()];
        self.router
            .route_tasks(&mut state.maps, &tasks, &mut fresh, pool, obs);
        let (maze_rerouted, _) =
            self.router
                .maze_phase(&mut state.maps, grid, &cells, &mut fresh, obs);
        obs.counter_add("route_maze_rerouted", maze_rerouted as u64);
        for (&ni, segs) in dirty.iter().zip(fresh.into_iter()) {
            state.committed[ni] = segs;
        }
        state.routes_since_full += 1;
        state.last_maze = maze_rerouted;
        obs.counter_add("route_incremental_dirty_nets", dirty.len() as u64);

        let result = summarize(
            state.maps.clone(),
            &state.decomp,
            &state.committed,
            maze_rerouted,
        );
        self.last = Some(IncrementalStats {
            dirty_nets: dirty.len(),
            total_nets: n_nets,
            full_resync: false,
            reason: ResyncReason::Incremental,
        });
        result
    }

    /// Replays the committed routes into fresh maps and checks the result
    /// is **bitwise** identical to the retained incremental maps — the
    /// exact-rip-up invariant. Returns `true` when no route happened yet.
    /// Intended for tests; cost is one full demand replay.
    pub fn verify_consistency(&self) -> bool {
        let Some(state) = &self.state else {
            return true;
        };
        let pin_via = self.router.config().pin_via;
        let mut replay = RouteMaps::new(state.maps.caps.clone(), self.router.config().via_weight);
        for d in &state.decomp {
            for &pb in &d.pin_bins {
                replay.via_demand[pb] += pin_via;
            }
        }
        for segs in &state.committed {
            for seg in segs {
                apply_seg(&mut replay, seg, 1.0);
            }
        }
        let bits = |m: &rdp_db::Map2d<f64>| -> Vec<u64> {
            m.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        bits(&replay.h_demand) == bits(&state.maps.h_demand)
            && bits(&replay.v_demand) == bits(&state.maps.v_demand)
            && bits(&replay.via_demand) == bits(&state.maps.via_demand)
    }
}
