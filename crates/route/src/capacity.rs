//! Routing capacity modelling: per-G-cell track capacity derived from the
//! layer stack, reduced by macro blockages and PG rails.

use rdp_db::{Design, Dir, GridSpec, Map2d};

/// Options controlling capacity derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityOptions {
    /// Number of lowest metal layers fully blocked by a macro (macros are
    /// routable over their top; ISPD-2015-style macros block M1–M4 of a
    /// 6-layer stack). Clamped to the stack height.
    pub macro_blocked_layers: usize,
    /// Fraction of its own layer's capacity a PG rail consumes in the
    /// G-cells it covers, scaled by area overlap.
    pub rail_blockage: f64,
    /// Minimum capacity left in any G-cell, as a fraction of the unblocked
    /// capacity (avoids division blow-ups in fully blocked cells).
    pub min_capacity_fraction: f64,
}

impl Default for CapacityOptions {
    fn default() -> Self {
        CapacityOptions {
            macro_blocked_layers: 4,
            rail_blockage: 0.5,
            min_capacity_fraction: 0.05,
        }
    }
}

/// Per-direction capacity maps for a design's G-cell grid.
#[derive(Debug, Clone)]
pub struct CapacityMaps {
    /// Horizontal track capacity per G-cell.
    pub h: Map2d<f64>,
    /// Vertical track capacity per G-cell.
    pub v: Map2d<f64>,
}

impl CapacityMaps {
    /// Builds capacity maps for `design` on its G-cell grid.
    pub fn build(design: &Design, opts: &CapacityOptions) -> CapacityMaps {
        let grid = design.gcell_grid();
        Self::build_on_grid(design, &grid, opts)
    }

    /// Builds capacity maps on an arbitrary grid (the evaluation flow uses
    /// a finer grid than placement).
    pub fn build_on_grid(design: &Design, grid: &GridSpec, opts: &CapacityOptions) -> CapacityMaps {
        let spec = design.routing();
        let blocked = opts.macro_blocked_layers.min(spec.num_layers());

        let total_h = spec.total_h_capacity();
        let total_v = spec.total_v_capacity();
        // Capacity fraction living on blocked layers, per direction.
        let blocked_h: f64 = spec.layers[..blocked]
            .iter()
            .filter(|l| l.dir == Dir::Horizontal)
            .map(|l| l.capacity)
            .sum();
        let blocked_v: f64 = spec.layers[..blocked]
            .iter()
            .filter(|l| l.dir == Dir::Vertical)
            .map(|l| l.capacity)
            .sum();

        let mut h = Map2d::filled(grid.nx(), grid.ny(), total_h);
        let mut v = Map2d::filled(grid.nx(), grid.ny(), total_v);
        let bin_area = grid.bin_area();

        // Macro blockages: remove the blocked-layer share scaled by overlap.
        for mid in design.macros() {
            let r = design.cell_rect(mid);
            let Some((x0, y0, x1, y1)) = grid.bins_overlapping(&r) else {
                continue;
            };
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    let f = grid.bin_rect(ix, iy).overlap_area(&r) / bin_area;
                    h[(ix, iy)] -= blocked_h * f;
                    v[(ix, iy)] -= blocked_v * f;
                }
            }
        }

        // Routing obstructions remove their whole layer's capacity in the
        // G-cells they cover, scaled by area overlap. Entries referencing a
        // layer above the stack are ignored (parsers accept them so hostile
        // inputs stay loadable).
        for obs in design.obstructions() {
            let li = obs.layer as usize;
            if li >= spec.num_layers() {
                continue;
            }
            let layer = &spec.layers[li];
            let Some((x0, y0, x1, y1)) = grid.bins_overlapping(&obs.rect) else {
                continue;
            };
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    let f = grid.bin_rect(ix, iy).overlap_area(&obs.rect) / bin_area;
                    match layer.dir {
                        Dir::Horizontal => h[(ix, iy)] -= layer.capacity * f,
                        Dir::Vertical => v[(ix, iy)] -= layer.capacity * f,
                    }
                }
            }
        }

        // PG rails consume part of their own layer's capacity.
        for rail in design.rails() {
            let li = rail.layer as usize;
            if li >= spec.num_layers() {
                continue;
            }
            let layer = &spec.layers[li];
            let Some((x0, y0, x1, y1)) = grid.bins_overlapping(&rail.rect) else {
                continue;
            };
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    let f = grid.bin_rect(ix, iy).overlap_area(&rail.rect) / bin_area;
                    let cut = layer.capacity * opts.rail_blockage * f;
                    match layer.dir {
                        Dir::Horizontal => h[(ix, iy)] -= cut,
                        Dir::Vertical => v[(ix, iy)] -= cut,
                    }
                }
            }
        }

        // Floors.
        let floor_h = total_h * opts.min_capacity_fraction;
        let floor_v = total_v * opts.min_capacity_fraction;
        h.map_in_place(|c| *c = c.max(floor_h));
        v.map_in_place(|c| *c = c.max(floor_v));

        CapacityMaps { h, v }
    }

    /// Total capacity map `Cap_{m,n} = Σ_l Cap_{m,n,l}` (Eq. (3) denominator).
    pub fn total(&self) -> Map2d<f64> {
        let mut t = self.h.clone();
        t.add_assign_map(&self.v);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, PgRail, Point, Rect, RoutingSpec};

    fn design_with_macro() -> Design {
        let mut b = DesignBuilder::new("c", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_cell(Cell::fixed_macro("m", 50.0, 50.0), Point::new(25.0, 25.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(80.0, 80.0));
        b.add_net("n", vec![(m, Point::default()), (a, Point::default())]);
        b.add_rail(PgRail {
            layer: 1,
            dir: Dir::Horizontal,
            rect: Rect::new(0.0, 70.0, 100.0, 72.0),
        });
        b.routing(RoutingSpec::uniform(6, 10.0, 10, 10));
        b.build().unwrap()
    }

    #[test]
    fn open_area_has_full_capacity() {
        let d = design_with_macro();
        let caps = CapacityMaps::build(&d, &CapacityOptions::default());
        // G-cell (9, 0) is far from macro and rails.
        assert_eq!(caps.h[(9, 0)], 30.0);
        assert_eq!(caps.v[(9, 0)], 30.0);
        assert_eq!(caps.total()[(9, 0)], 60.0);
    }

    #[test]
    fn macro_blocks_lower_layers() {
        let d = design_with_macro();
        let caps = CapacityMaps::build(&d, &CapacityOptions::default());
        // G-cell (1,1) fully inside the macro: 4 of 6 layers blocked.
        // H layers are M1, M3, M5 → blocked M1, M3 = 20 of 30.
        assert!((caps.h[(1, 1)] - 10.0).abs() < 1e-9);
        // V layers are M2, M4, M6 → blocked M2, M4 = 20 of 30.
        assert!((caps.v[(1, 1)] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rail_reduces_its_layer_share() {
        let d = design_with_macro();
        let caps = CapacityMaps::build(&d, &CapacityOptions::default());
        // Rail on M2 (vertical in the uniform stack) covers y∈[70,72]:
        // overlap fraction in G-cell row 7 = (100·2)/(10·10·10 cells) → per
        // cell 2·10/100 = 0.2 → cut = 10 · 0.5 · 0.2 = 1.0.
        assert!((caps.v[(5, 7)] - 29.0).abs() < 1e-9);
        assert_eq!(caps.h[(5, 7)], 30.0);
    }

    #[test]
    fn capacity_never_below_floor() {
        let d = design_with_macro();
        let opts = CapacityOptions {
            macro_blocked_layers: 6,
            ..Default::default()
        };
        let caps = CapacityMaps::build(&d, &opts);
        for (_, _, &c) in caps.h.iter_coords() {
            assert!(c >= 30.0 * 0.05 - 1e-12);
        }
        // Fully-blocked interior cell pinned at the floor.
        assert!((caps.h[(1, 1)] - 1.5).abs() < 1e-9);
    }
}
