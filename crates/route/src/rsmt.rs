//! Rectilinear spanning-tree net decomposition.
//!
//! Multi-pin nets are decomposed into two-pin segments before pattern
//! routing using a Manhattan-distance minimum spanning tree (Prim's
//! algorithm, O(k²) — fine for the net degrees in the benchmark suite).
//! The MST upper-bounds the RSMT by at most 1.5×; the congestion-aware
//! pattern router then picks each segment's embedding, which is where the
//! routability signal the placer consumes actually comes from.

use rdp_db::Point;

/// A two-pin routing request produced by net decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Manhattan length of the segment.
    pub fn manhattan_len(&self) -> f64 {
        (self.a.x - self.b.x).abs() + (self.a.y - self.b.y).abs()
    }
}

/// Decomposes a pin set into two-pin segments.
///
/// * 0 or 1 pins: empty.
/// * 2 pins: one segment.
/// * k pins: edges of a Manhattan-distance MST (Prim).
///
/// The total Manhattan length of the returned segments upper-bounds the
/// RSMT length and lower-bounds nothing; it is the standard global-routing
/// topology choice when no Steiner lookup table is available.
pub fn decompose(pins: &[Point]) -> Vec<Segment> {
    match pins.len() {
        0 | 1 => Vec::new(),
        2 => vec![Segment {
            a: pins[0],
            b: pins[1],
        }],
        _ => prim_mst(pins),
    }
}

/// Manhattan-distance MST via Prim's algorithm.
fn prim_mst(pins: &[Point]) -> Vec<Segment> {
    let n = pins.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_parent = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = manhattan(pins[0], pins[i]);
        best_parent[i] = 0;
    }
    for _ in 1..n {
        // Pick the closest out-of-tree pin.
        let mut best = usize::MAX;
        let mut bd = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && best_dist[i] < bd {
                bd = best_dist[i];
                best = i;
            }
        }
        debug_assert!(best != usize::MAX);
        in_tree[best] = true;
        edges.push(Segment {
            a: pins[best_parent[best]],
            b: pins[best],
        });
        for i in 0..n {
            if !in_tree[i] {
                let d = manhattan(pins[best], pins[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_parent[i] = best;
                }
            }
        }
    }
    edges
}

/// Total Manhattan length of a segment list.
pub fn total_length(segments: &[Segment]) -> f64 {
    segments.iter().map(|s| s.manhattan_len()).sum()
}

fn manhattan(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs() + (a.y - b.y).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(decompose(&[]).is_empty());
        assert!(decompose(&[Point::new(1.0, 1.0)]).is_empty());
    }

    #[test]
    fn two_pins_single_segment() {
        let segs = decompose(&[Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].manhattan_len(), 7.0);
    }

    #[test]
    fn mst_has_k_minus_one_edges() {
        let pins: Vec<Point> = (0..7)
            .map(|i| Point::new((i * 13 % 5) as f64, (i * 7 % 3) as f64))
            .collect();
        let segs = decompose(&pins);
        assert_eq!(segs.len(), 6);
    }

    #[test]
    fn mst_on_collinear_pins_is_chain() {
        let pins = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let segs = decompose(&pins);
        // Chain total length must equal the extent (10), not double-count.
        assert_eq!(total_length(&segs), 10.0);
    }

    #[test]
    fn mst_beats_star_topology() {
        // 4 corners + center: star from corner 0 would be much longer.
        let pins = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(5.0, 5.0),
        ];
        let segs = decompose(&pins);
        let star: f64 = pins[1..]
            .iter()
            .map(|&p| (p.x - pins[0].x).abs() + (p.y - pins[0].y).abs())
            .sum();
        assert!(total_length(&segs) <= star);
        assert_eq!(segs.len(), 4);
    }

    #[test]
    fn mst_length_invariant_under_duplicate_pins() {
        let pins = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 4.0),
        ];
        let segs = decompose(&pins);
        assert_eq!(total_length(&segs), 8.0);
    }
}
