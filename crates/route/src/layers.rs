//! Layer assignment: distributing the 2-D routed demand onto the actual
//! metal stack.
//!
//! The placement loop only needs the layer-summed maps of Eq. (3), but
//! the evaluation flow (and any downstream detailed-routing experiment)
//! wants per-layer utilization: macros block the lower layers, so the
//! same 2-D demand can be fine on an open G-cell and overflowing on a
//! blocked one. Demand is split across same-direction layers in
//! proportion to each layer's *remaining* capacity — the balanced
//! assignment a layer-aware router converges to — and via demand is
//! charged to every layer pair it crosses.

use rdp_db::{Design, Dir, GridSpec, Map2d};

use crate::capacity::CapacityOptions;
use crate::maps::RouteMaps;

/// Per-layer demand/capacity maps.
#[derive(Debug, Clone)]
pub struct LayerAssignment {
    /// Layer names, bottom-up (mirrors the design's stack).
    pub names: Vec<String>,
    /// Preferred direction per layer.
    pub dirs: Vec<Dir>,
    /// Wire demand per layer per G-cell.
    pub demand: Vec<Map2d<f64>>,
    /// Capacity per layer per G-cell (after blockages).
    pub capacity: Vec<Map2d<f64>>,
}

impl LayerAssignment {
    /// Total overflow of one layer (track units).
    pub fn layer_overflow(&self, layer: usize) -> f64 {
        let mut acc = 0.0;
        for iy in 0..self.demand[layer].ny() {
            for ix in 0..self.demand[layer].nx() {
                acc += (self.demand[layer][(ix, iy)] - self.capacity[layer][(ix, iy)]).max(0.0);
            }
        }
        acc
    }

    /// The most overflowed layer and its overflow.
    pub fn worst_layer(&self) -> (usize, f64) {
        (0..self.demand.len())
            .map(|l| (l, self.layer_overflow(l)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, 0.0))
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.demand.len()
    }
}

/// Splits the routed 2-D demand across the design's layer stack on the
/// given grid.
///
/// Wire demand in each direction is divided among that direction's layers
/// proportionally to their per-G-cell capacity (so macro-blocked lower
/// layers receive proportionally less). Via demand is spread uniformly
/// over interior layers (a via stack crosses them all).
pub fn assign_layers(design: &Design, maps: &RouteMaps, grid: &GridSpec) -> LayerAssignment {
    let spec = design.routing();
    let n = spec.num_layers();
    let (nx, ny) = (grid.nx(), grid.ny());

    // Per-layer capacity maps: start from the layer's nominal capacity and
    // apply the same macro/rail blockage model as CapacityMaps, but per
    // layer rather than direction-summed.
    let opts = CapacityOptions::default();
    let blocked = opts.macro_blocked_layers.min(n);
    let mut capacity: Vec<Map2d<f64>> = spec
        .layers
        .iter()
        .map(|l| Map2d::filled(nx, ny, l.capacity))
        .collect();
    let bin_area = grid.bin_area();
    for mid in design.macros() {
        let r = design.cell_rect(mid);
        let Some((x0, y0, x1, y1)) = grid.bins_overlapping(&r) else {
            continue;
        };
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                let f = grid.bin_rect(ix, iy).overlap_area(&r) / bin_area;
                for (li, cap) in capacity.iter_mut().enumerate().take(blocked) {
                    cap[(ix, iy)] -= spec.layers[li].capacity * f;
                }
            }
        }
    }
    for cap_map in capacity.iter_mut() {
        cap_map.map_in_place(|c| *c = c.max(0.0));
    }

    // Proportional split of directional demand.
    let mut demand: Vec<Map2d<f64>> = (0..n).map(|_| Map2d::new(nx, ny)).collect();
    for iy in 0..ny {
        for ix in 0..nx {
            for (total, dir) in [
                (maps.h_demand[(ix, iy)], Dir::Horizontal),
                (maps.v_demand[(ix, iy)], Dir::Vertical),
            ] {
                if total <= 0.0 {
                    continue;
                }
                let cap_sum: f64 = (0..n)
                    .filter(|&l| spec.layers[l].dir == dir)
                    .map(|l| capacity[l][(ix, iy)])
                    .sum();
                if cap_sum > 1e-12 {
                    for l in 0..n {
                        if spec.layers[l].dir == dir {
                            demand[l][(ix, iy)] += total * capacity[l][(ix, iy)] / cap_sum;
                        }
                    }
                } else {
                    // Fully blocked: dump on the topmost layer of the
                    // direction (it will overflow, which is the point).
                    if let Some(top) = (0..n).rev().find(|&l| spec.layers[l].dir == dir) {
                        demand[top][(ix, iy)] += total;
                    }
                }
            }
            // Vias: each via crosses the interior layers.
            let vias = maps.via_demand[(ix, iy)] * maps.via_weight;
            if vias > 0.0 && n > 2 {
                let share = vias / (n - 2) as f64;
                for l in 1..n - 1 {
                    demand[l][(ix, iy)] += share;
                }
            }
        }
    }

    LayerAssignment {
        names: spec.layers.iter().map(|l| l.name.clone()).collect(),
        dirs: spec.layers.iter().map(|l| l.dir).collect(),
        demand,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::GlobalRouter;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};

    fn routed_design(with_macro: bool) -> (Design, crate::router::RouteResult) {
        let mut b = DesignBuilder::new("l", Rect::new(0.0, 0.0, 80.0, 80.0));
        if with_macro {
            b.add_cell(Cell::fixed_macro("m", 30.0, 30.0), Point::new(40.0, 40.0));
        }
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(5.0, 45.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(75.0, 45.0));
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(6, 10.0, 8, 8));
        let d = b.build().unwrap();
        let r = GlobalRouter::default().route(&d);
        (d, r)
    }

    #[test]
    fn conservation_per_direction() {
        let (d, r) = routed_design(false);
        let grid = d.gcell_grid();
        let asg = assign_layers(&d, &r.maps, &grid);
        // Sum of H layers == h_demand in cells without via demand (via
        // stacks add interior-layer demand on top of the wire share).
        for iy in 0..8 {
            for ix in 0..8 {
                if r.maps.via_demand[(ix, iy)] > 0.0 {
                    continue;
                }
                let h_sum: f64 = (0..6)
                    .filter(|&l| asg.dirs[l] == Dir::Horizontal)
                    .map(|l| asg.demand[l][(ix, iy)])
                    .sum();
                assert!(
                    (h_sum - r.maps.h_demand[(ix, iy)]).abs() < 1e-9,
                    "({ix},{iy}): {h_sum} vs {}",
                    r.maps.h_demand[(ix, iy)]
                );
            }
        }
    }

    #[test]
    fn uniform_stack_splits_evenly() {
        let (d, r) = routed_design(false);
        let grid = d.gcell_grid();
        let asg = assign_layers(&d, &r.maps, &grid);
        // Straight horizontal route at row 4: three H layers get equal
        // shares (no via demand on pure cells away from pins).
        let cell = (3usize, 4usize);
        let shares: Vec<f64> = (0..6)
            .filter(|&l| asg.dirs[l] == Dir::Horizontal)
            .map(|l| asg.demand[l][cell])
            .collect();
        assert!(
            shares.iter().all(|&s| (s - shares[0]).abs() < 1e-9),
            "{shares:?}"
        );
    }

    #[test]
    fn blocked_layers_receive_less_under_macro() {
        let (d, r) = routed_design(true);
        let grid = d.gcell_grid();
        let asg = assign_layers(&d, &r.maps, &grid);
        // G-cell fully under the macro: M1 capacity 0, M5 keeps nominal.
        let cell = (4usize, 4usize);
        assert!(asg.capacity[0][cell] < 1e-9, "M1 should be blocked");
        assert!((asg.capacity[4][cell] - 10.0).abs() < 1e-9);
        // Demand routed over the macro must avoid the blocked M1.
        if r.maps.h_demand[cell] > 0.0 {
            assert!(asg.demand[0][cell] < 1e-9);
        }
    }

    #[test]
    fn worst_layer_identifies_overflow() {
        let (d, r) = routed_design(false);
        let grid = d.gcell_grid();
        let mut asg = assign_layers(&d, &r.maps, &grid);
        // Synthetic overload on layer 2.
        asg.demand[2][(0, 0)] = 1000.0;
        let (worst, over) = asg.worst_layer();
        assert_eq!(worst, 2);
        assert!(over > 900.0);
        assert_eq!(asg.num_layers(), 6);
    }
}
