//! # rdp-route — grid global routing for congestion estimation
//!
//! A CPU reimplementation of the congestion-estimation stack the paper
//! relies on:
//!
//! * [`rsmt`] — net decomposition into two-pin segments (Prim MST),
//! * [`CapacityMaps`] — per-G-cell track capacity with macro and PG-rail
//!   blockages,
//! * [`GlobalRouter`] — congestion-aware L/Z-shape pattern routing with
//!   rip-up-and-reroute passes (stand-in for the GPU router of Lin & Wong
//!   \[18\] used by the paper),
//! * [`RouteMaps`] — demand maps and the Eq. (3) congestion map
//!   `C = max(Dmd/Cap − 1, 0)` plus the `Dmd/Cap` charge density that
//!   feeds the paper's congestion Poisson equation,
//! * [`rudy_map`] — the classic RUDY bounding-box estimator as a baseline.
//!
//! ```
//! use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};
//! use rdp_route::GlobalRouter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DesignBuilder::new("demo", Rect::new(0.0, 0.0, 80.0, 80.0));
//! let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(5.0, 5.0));
//! let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(75.0, 75.0));
//! b.add_net("n0", vec![(a, Point::default()), (c, Point::default())]);
//! b.routing(RoutingSpec::uniform(4, 10.0, 8, 8));
//! let design = b.build()?;
//!
//! let result = GlobalRouter::default().route(&design);
//! assert!(result.wirelength > 0.0);
//! assert_eq!(result.congestion.nx(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod incremental;
mod layers;
mod maps;
mod maze;
mod router;
pub mod rsmt;
mod rudy;

pub use capacity::{CapacityMaps, CapacityOptions};
pub use incremental::{IncrementalConfig, IncrementalRouter, IncrementalStats, ResyncReason};
pub use layers::{assign_layers, LayerAssignment};
pub use maps::RouteMaps;
pub use maze::{astar, MazePath, MazeStep};
pub use router::{GlobalRouter, RouteResult, RouterConfig};
pub use rudy::{rudy_map, rudy_map_with};
