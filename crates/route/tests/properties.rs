//! Property tests for the global router (rdp-testkit harness).

use rdp_db::{Cell, Design, DesignBuilder, Point, Rect, RoutingSpec};
use rdp_route::{astar, CapacityMaps, GlobalRouter, RouteMaps, RouterConfig};
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, vecs, PropConfig};

fn design_with(pins: Vec<(f64, f64)>, capacity: f64) -> Design {
    let mut b = DesignBuilder::new("p", Rect::new(0.0, 0.0, 80.0, 80.0));
    let ids: Vec<_> = pins
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| b.add_cell(Cell::std(format!("c{i}"), 1.0, 1.0), Point::new(x, y)))
        .collect();
    for (i, pair) in ids.chunks(2).enumerate() {
        if let [a, c] = pair {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
    }
    // Occasionally a multi-pin net.
    if ids.len() >= 5 {
        b.add_net(
            "big",
            ids[..5].iter().map(|&c| (c, Point::default())).collect(),
        );
    }
    b.routing(RoutingSpec::uniform(4, capacity, 16, 16));
    b.build().unwrap()
}

fn arb_pins() -> impl rdp_testkit::Gen<Value = Vec<(f64, f64)>> {
    vecs((range(0.5f64..79.5), range(0.5f64..79.5)), 4..60)
}

/// Routing is deterministic and all outputs are self-consistent.
#[test]
fn route_is_deterministic_and_consistent() {
    prop_check!(
        PropConfig::cases(32),
        (arb_pins(), range(1.0f64..20.0)),
        |(pins, cap): (Vec<(f64, f64)>, f64)| {
            let d = design_with(pins, cap);
            let router = GlobalRouter::default();
            let a = router.route(&d);
            let b = router.route(&d);
            prop_assert_eq!(a.wirelength, b.wirelength);
            prop_assert_eq!(a.vias, b.vias);
            prop_assert_eq!(a.maps.total_overflow(), b.maps.total_overflow());
            // Congestion map identity with the demand/capacity maps.
            for iy in 0..a.congestion.ny() {
                for ix in 0..a.congestion.nx() {
                    let expect =
                        (a.maps.demand_at(ix, iy) / a.maps.capacity_at(ix, iy) - 1.0).max(0.0);
                    prop_assert!((a.congestion[(ix, iy)] - expect).abs() < 1e-9);
                }
            }
            Ok(())
        }
    );
}

/// The maze phase can only reduce (or keep) the total overflow.
#[test]
fn maze_phase_never_increases_overflow() {
    prop_check!(PropConfig::cases(32), arb_pins(), |pins: Vec<(
        f64,
        f64
    )>| {
        let d = design_with(pins, 1.5);
        let plain = GlobalRouter::new(RouterConfig {
            maze_rip_up: 0,
            ..RouterConfig::default()
        })
        .route(&d);
        let mazed = GlobalRouter::new(RouterConfig {
            maze_rip_up: 50,
            ..RouterConfig::default()
        })
        .route(&d);
        prop_assert!(
            mazed.maps.total_overflow() <= plain.maps.total_overflow() + 1e-9,
            "maze {} vs plain {}",
            mazed.maps.total_overflow(),
            plain.maps.total_overflow()
        );
        // Detours are recorded whenever the maze found longer routes.
        prop_assert!(mazed.wirelength >= plain.wirelength - 1e-9);
        prop_assert!(mazed.detour_wirelength >= 0.0);
        Ok(())
    });
}

/// MST decomposition invariants: k−1 edges, total length at least the
/// bounding-box half-perimeter and at most the sorted-chain length.
#[test]
fn mst_decomposition_bounds() {
    prop_check!(
        PropConfig::cases(32),
        vecs((range(0.0f64..100.0), range(0.0f64..100.0)), 2..40),
        |pins: Vec<(f64, f64)>| {
            use rdp_route::rsmt;
            let pts: Vec<rdp_db::Point> = pins
                .iter()
                .map(|&(x, y)| rdp_db::Point::new(x, y))
                .collect();
            let segs = rsmt::decompose(&pts);
            prop_assert_eq!(segs.len(), pts.len() - 1);
            let total = rsmt::total_length(&segs);
            // Lower bound: bbox half-perimeter.
            let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
            for p in &pts {
                x0 = x0.min(p.x);
                y0 = y0.min(p.y);
                x1 = x1.max(p.x);
                y1 = y1.max(p.y);
            }
            prop_assert!(total >= (x1 - x0) + (y1 - y0) - 1e-9);
            // Upper bound: visiting pins in x order (a valid spanning chain).
            let mut sorted = pts.clone();
            sorted.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
            let chain: f64 = sorted
                .windows(2)
                .map(|w| (w[0].x - w[1].x).abs() + (w[0].y - w[1].y).abs())
                .sum();
            prop_assert!(total <= chain + 1e-9, "mst {} > chain {}", total, chain);
            Ok(())
        }
    );
}

/// A* cost never beats the Manhattan lower bound and respects the
/// cost floor of 1 per cell.
#[test]
fn astar_respects_lower_bound() {
    prop_check!(
        PropConfig::cases(32),
        (
            range(0usize..16),
            range(0usize..16),
            range(0usize..16),
            range(0usize..16),
        ),
        |(sx, sy, tx, ty): (usize, usize, usize, usize)| {
            let maps = RouteMaps::new(
                CapacityMaps {
                    h: rdp_db::Map2d::filled(16, 16, 5.0),
                    v: rdp_db::Map2d::filled(16, 16, 5.0),
                },
                0.5,
            );
            let p = astar(&maps, (sx, sy), (tx, ty), &|_, _, _| 1.0, 0.7).unwrap();
            let manhattan = (sx as f64 - tx as f64).abs() + (sy as f64 - ty as f64).abs();
            prop_assert!(p.cost >= manhattan - 1e-9);
            prop_assert_eq!(
                p.steps.len() as f64,
                manhattan,
                "uncongested path is monotone"
            );
            Ok(())
        }
    );
}

/// Zero-capacity layers (`RoutingSpec::uniform(_, 0.0, ..)`): Eq. (3)
/// congestion is +∞ everywhere demand lands, which downstream consumers
/// must detect — but the router itself must not panic, demand must stay
/// non-negative and finite, and nothing may go NaN.
#[test]
fn zero_capacity_layers_route_without_panicking() {
    prop_check!(PropConfig::cases(16), arb_pins(), |pins: Vec<(
        f64,
        f64
    )>| {
        let d = design_with(pins, 0.0);
        let r = GlobalRouter::default().route(&d);
        prop_assert!(
            r.wirelength.is_finite() && r.wirelength >= 0.0,
            "wirelength {}",
            r.wirelength
        );
        prop_assert!(r.vias >= 0.0 && r.vias.is_finite());
        for iy in 0..r.congestion.ny() {
            for ix in 0..r.congestion.nx() {
                let dem = r.maps.demand_at(ix, iy);
                prop_assert!(
                    dem >= 0.0 && dem.is_finite(),
                    "demand {} at ({}, {})",
                    dem,
                    ix,
                    iy
                );
                prop_assert!(!r.congestion[(ix, iy)].is_nan(), "NaN congestion");
            }
        }
        // Total overflow may legitimately be +∞ with zero capacity, but
        // it must never be NaN (that would poison every comparison).
        prop_assert!(!r.maps.total_overflow().is_nan());
        Ok(())
    });
}

/// Nets whose pins coincide in one G-cell (the closest a buildable design
/// gets to a single-pin net) exercise the zero-length decomposition path;
/// rip-up/re-route must never drive the demand accounting negative.
#[test]
fn coincident_pin_nets_keep_demand_non_negative() {
    prop_check!(
        PropConfig::cases(32),
        (arb_pins(), range(0.2f64..2.0)),
        |(pins, cap): (Vec<(f64, f64)>, f64)| {
            let mut b = DesignBuilder::new("z", Rect::new(0.0, 0.0, 80.0, 80.0));
            let ids: Vec<_> = pins
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    b.add_cell(Cell::std(format!("c{i}"), 1.0, 1.0), Point::new(x, y))
                })
                .collect();
            // Every net's two pins sit on the SAME cell at the same
            // offset: a zero-length route occupying a single G-cell.
            for (i, &id) in ids.iter().enumerate() {
                b.add_net(
                    format!("n{i}"),
                    vec![(id, Point::default()), (id, Point::default())],
                );
            }
            // Plus a couple of real nets so rip-up has something to tear.
            for (i, pair) in ids.chunks(2).enumerate() {
                if let [a, c] = pair {
                    b.add_net(
                        format!("m{i}"),
                        vec![(*a, Point::default()), (*c, Point::default())],
                    );
                }
            }
            b.routing(RoutingSpec::uniform(4, cap, 16, 16));
            let d = b.build().unwrap();
            // Scarce capacity + aggressive rip-up maximizes the chance of
            // demand-removal underflow.
            let r = GlobalRouter::new(RouterConfig {
                maze_rip_up: 50,
                ..RouterConfig::default()
            })
            .route(&d);
            for iy in 0..r.congestion.ny() {
                for ix in 0..r.congestion.nx() {
                    let dem = r.maps.demand_at(ix, iy);
                    prop_assert!(
                        dem >= -1e-9 && dem.is_finite(),
                        "negative/non-finite demand {} at ({}, {})",
                        dem,
                        ix,
                        iy
                    );
                }
            }
            prop_assert!(r.wirelength.is_finite());
            prop_assert!(!r.maps.total_overflow().is_nan());
            Ok(())
        }
    );
}
