//! Capacity-accounting properties of [`RouteMaps`]: overflow and
//! congestion are never negative, and the aggregate metrics agree with
//! direct per-G-cell computation — for arbitrary demand/capacity fills.

use rdp_db::Map2d;
use rdp_route::{CapacityMaps, RouteMaps};
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, PropConfig};

/// Builds RouteMaps with random capacities and demands (including
/// G-cells far over and far under capacity).
fn random_maps(nx: usize, ny: usize, via_weight: f64, seed: u64) -> RouteMaps {
    let mut rng = rdp_testkit::Rng::new(seed);
    let mut fill = |lo: f64, hi: f64| {
        Map2d::from_vec(
            nx,
            ny,
            (0..nx * ny).map(|_| rng.gen_range(lo..hi)).collect(),
        )
    };
    let caps = CapacityMaps {
        h: fill(0.5, 10.0),
        v: fill(0.5, 10.0),
    };
    let mut maps = RouteMaps::new(caps, via_weight);
    maps.h_demand = fill(0.0, 15.0);
    maps.v_demand = fill(0.0, 15.0);
    maps.via_demand = fill(0.0, 8.0);
    maps
}

fn arb_maps() -> impl rdp_testkit::Gen<Value = (usize, usize, f64, u64)> {
    (
        range(1usize..12),
        range(1usize..12),
        range(0.0f64..2.0),
        range(0u64..1 << 32),
    )
}

/// Overflow is never negative, zero-demand maps have zero overflow, and
/// the total equals the per-G-cell sum of `max(Dmd − Cap, 0)`.
#[test]
fn overflow_never_negative_and_sums_per_gcell() {
    prop_check!(PropConfig::cases(64), arb_maps(), |(nx, ny, vw, seed): (
        usize,
        usize,
        f64,
        u64
    )| {
        let maps = random_maps(nx, ny, vw, seed);
        let total = maps.total_overflow();
        prop_assert!(total >= 0.0, "negative overflow {total}");

        let mut direct = 0.0;
        let mut over_cells = 0usize;
        for iy in 0..ny {
            for ix in 0..nx {
                let dmd = maps.demand_at(ix, iy);
                let cap = maps.capacity_at(ix, iy);
                prop_assert!(dmd >= 0.0);
                prop_assert!(cap > 0.0);
                direct += (dmd - cap).max(0.0);
                if dmd > cap {
                    over_cells += 1;
                }
            }
        }
        prop_assert!(
            (total - direct).abs() < 1e-9,
            "total {total} direct {direct}"
        );
        prop_assert_eq!(maps.overflowed_gcells(), over_cells);
        Ok(())
    });
}

/// The Eq. (3) congestion map is non-negative everywhere, zero exactly
/// on under-capacity G-cells, and consistent with the charge density.
#[test]
fn congestion_map_nonnegative_and_consistent() {
    prop_check!(PropConfig::cases(64), arb_maps(), |(nx, ny, vw, seed): (
        usize,
        usize,
        f64,
        u64
    )| {
        let maps = random_maps(nx, ny, vw, seed);
        let cong = maps.congestion_eq3();
        let rho = maps.charge_density();
        for iy in 0..ny {
            for ix in 0..nx {
                let c = cong[(ix, iy)];
                prop_assert!(c >= 0.0, "negative congestion {c} at ({ix},{iy})");
                let util = rho[(ix, iy)];
                prop_assert!(util >= 0.0);
                prop_assert!((c - (util - 1.0).max(0.0)).abs() < 1e-9);
                if maps.demand_at(ix, iy) <= maps.capacity_at(ix, iy) {
                    prop_assert_eq!(c, 0.0);
                }
            }
        }
        Ok(())
    });
}

/// Empty demand ⇒ zero overflow, zero congestion, zero vias — for any
/// capacity model.
#[test]
fn empty_demand_has_zero_overflow() {
    prop_check!(PropConfig::cases(64), arb_maps(), |(nx, ny, vw, seed): (
        usize,
        usize,
        f64,
        u64
    )| {
        let mut rng = rdp_testkit::Rng::new(seed);
        let caps = CapacityMaps {
            h: Map2d::from_vec(
                nx,
                ny,
                (0..nx * ny).map(|_| rng.gen_range(0.5f64..10.0)).collect(),
            ),
            v: Map2d::from_vec(
                nx,
                ny,
                (0..nx * ny).map(|_| rng.gen_range(0.5f64..10.0)).collect(),
            ),
        };
        let maps = RouteMaps::new(caps, vw);
        prop_assert_eq!(maps.total_overflow(), 0.0);
        prop_assert_eq!(maps.overflowed_gcells(), 0);
        prop_assert_eq!(maps.total_vias(), 0.0);
        prop_assert_eq!(maps.congestion_eq3().max(), 0.0);
        Ok(())
    });
}

/// Adding demand anywhere can only grow (or keep) the total overflow:
/// capacity accounting is monotone in demand.
#[test]
fn overflow_monotone_in_demand() {
    prop_check!(
        PropConfig::cases(64),
        (arb_maps(), range(0.0f64..20.0)),
        |((nx, ny, vw, seed), extra): ((usize, usize, f64, u64), f64)| {
            let maps = random_maps(nx, ny, vw, seed);
            let before = maps.total_overflow();
            let mut rng = rdp_testkit::Rng::new(seed ^ 0xDEAD_BEEF);
            let ix = rng.gen_range(0..nx);
            let iy = rng.gen_range(0..ny);
            let mut bumped = maps.clone();
            bumped.h_demand[(ix, iy)] += extra;
            prop_assert!(
                bumped.total_overflow() >= before - 1e-12,
                "overflow shrank after adding demand"
            );
            Ok(())
        }
    );
}
