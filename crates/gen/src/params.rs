//! Generation parameters and the ISPD-2015-mirrored suite table.

/// Parameters controlling synthetic design generation.
///
/// The defaults produce a mid-size, moderately congested design; the
/// [`ispd2015_suite`](crate::ispd2015_suite) table overrides them per
/// design to mirror the relative scale and stress of the paper's 20
/// benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Number of fixed macro blocks.
    pub num_macros: usize,
    /// Target utilization: movable cell area / (die − macro) area.
    pub utilization: f64,
    /// Fraction of the die area covered by macros (0 when `num_macros`=0).
    pub macro_fraction: f64,
    /// Die aspect ratio height/width.
    pub aspect: f64,
    /// Cells per locality cluster of the netlist generator.
    pub cluster_size: usize,
    /// Fraction of nets with exactly two pins.
    pub two_pin_frac: f64,
    /// Signal nets per movable cell.
    pub nets_per_cell: f64,
    /// Number of high-fanout (12–40 pin) nets.
    pub high_fanout_nets: usize,
    /// I/O terminals placed on the die boundary.
    pub io_terminals: usize,
    /// Capacity calibration quantile: the routing capacity is set to this
    /// quantile of the demand observed on a compact reference placement.
    /// Lower ⇒ scarcer routing resources ⇒ more congestion stress.
    pub congestion_margin: f64,
    /// Spacing of vertical M2 PG rails in microns (0 disables rails).
    pub rail_pitch: f64,
    /// Number of routing layers (alternating H/V from M1).
    pub num_layers: usize,
    /// RNG seed; two generations with identical params and seed are
    /// byte-identical.
    pub seed: u64,
    /// Extra long-range cross-cluster nets as a fraction of `num_cells`,
    /// emulating a high-Rent-exponent netlist. 0 disables. Drawn from a
    /// forked RNG stream, so enabling it does not perturb the base design.
    pub global_net_frac: f64,
    /// Number of pin-density hotspots: clusters that receive a burst of
    /// extra dense local nets (forked RNG stream; 0 disables).
    pub hotspot_clusters: usize,
    /// FPGA-style discrete site grid in microns: movable cells snap to
    /// x-multiples of this pitch in the reference placement (0 disables).
    pub site_grid: f64,
    /// Number of lowest routing layers on which each macro footprint is
    /// also emitted as an explicit routing obstruction (0 disables).
    pub obstruction_layers: usize,
    /// Count of random standalone routing blockage rectangles scattered
    /// over the die (forked RNG stream; 0 disables).
    pub random_obstructions: usize,
    /// M1 track pitch in microns; when > 0 every layer gets a pitch scaled
    /// by its pair index, exercising the LEF/DEF track plumbing (0 = no
    /// pitch information, the default).
    pub track_pitch: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            num_cells: 4000,
            num_macros: 0,
            utilization: 0.7,
            macro_fraction: 0.0,
            aspect: 1.0,
            cluster_size: 48,
            two_pin_frac: 0.65,
            nets_per_cell: 1.1,
            high_fanout_nets: 10,
            io_terminals: 32,
            congestion_margin: 0.93,
            rail_pitch: 0.0,
            num_layers: 6,
            seed: 1,
            global_net_frac: 0.0,
            hotspot_clusters: 0,
            site_grid: 0.0,
            obstruction_layers: 0,
            random_obstructions: 0,
            track_pitch: 0.0,
        }
    }
}

/// One entry of the benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteEntry {
    /// Design name, matching Table I of the paper.
    pub name: &'static str,
    /// Generation parameters.
    pub params: GenParams,
}

fn entry(
    name: &'static str,
    num_cells: usize,
    num_macros: usize,
    utilization: f64,
    margin: f64,
    seed: u64,
) -> SuiteEntry {
    let macro_fraction = if num_macros == 0 { 0.0 } else { 0.22 };
    SuiteEntry {
        name,
        params: GenParams {
            num_cells,
            num_macros,
            utilization,
            macro_fraction,
            high_fanout_nets: (num_cells / 400).max(4),
            io_terminals: (num_cells / 150).clamp(16, 128),
            congestion_margin: margin,
            rail_pitch: 1.0, // replaced below: set relative to die in generator when <= 1
            seed,
            ..GenParams::default()
        },
    }
}

/// The 20-design suite mirroring the ISPD 2015 contest benchmarks used in
/// Table I. Cell counts are scaled down ~15–30× from the originals to
/// laptop scale while preserving the relative ordering (superblue designs
/// largest, fft/pci smallest), the macro structure, and a per-design
/// congestion-stress level chosen to mirror which designs show high DRV
/// counts in the paper.
pub fn ispd2015_suite() -> Vec<SuiteEntry> {
    vec![
        entry("des_perf_1", 8000, 0, 0.83, 0.856, 101),
        entry("des_perf_a", 7000, 4, 0.55, 0.933, 102),
        entry("des_perf_b", 7000, 0, 0.62, 0.906, 103),
        entry("edit_dist_a", 9000, 6, 0.58, 0.840, 104),
        entry("fft_1", 2600, 0, 0.82, 0.918, 105),
        entry("fft_2", 2600, 0, 0.52, 0.949, 106),
        entry("fft_a", 2200, 6, 0.32, 0.960, 107),
        entry("fft_b", 2200, 6, 0.36, 0.894, 108),
        entry("matrix_mult_1", 10000, 0, 0.78, 0.809, 109),
        entry("matrix_mult_2", 10000, 0, 0.75, 0.825, 110),
        entry("matrix_mult_a", 9000, 5, 0.42, 0.933, 111),
        entry("matrix_mult_b", 8500, 5, 0.46, 0.933, 112),
        entry("matrix_mult_c", 8500, 5, 0.42, 0.933, 113),
        entry("pci_bridge32_a", 2000, 4, 0.42, 0.949, 114),
        entry("pci_bridge32_b", 2000, 6, 0.32, 0.949, 115),
        entry("superblue11_a", 24000, 8, 0.46, 0.991, 116),
        entry("superblue12", 32000, 10, 0.56, 0.920, 117),
        entry("superblue14", 18000, 8, 0.50, 0.980, 118),
        entry("superblue16_a", 22000, 6, 0.50, 0.964, 119),
        entry("superblue19", 16000, 8, 0.46, 0.964, 120),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_unique_names() {
        let suite = ispd2015_suite();
        assert_eq!(suite.len(), 20);
        let mut names: Vec<_> = suite.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn superblues_are_largest() {
        let suite = ispd2015_suite();
        let max_non_sb = suite
            .iter()
            .filter(|e| !e.name.starts_with("superblue"))
            .map(|e| e.params.num_cells)
            .max()
            .unwrap();
        for e in suite.iter().filter(|e| e.name.starts_with("superblue")) {
            assert!(e.params.num_cells > max_non_sb, "{}", e.name);
        }
    }

    #[test]
    fn macro_designs_have_macro_fraction() {
        for e in ispd2015_suite() {
            if e.params.num_macros > 0 {
                assert!(e.params.macro_fraction > 0.0, "{}", e.name);
            } else {
                assert_eq!(e.params.macro_fraction, 0.0, "{}", e.name);
            }
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let suite = ispd2015_suite();
        let mut seeds: Vec<_> = suite.iter().map(|e| e.params.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 20);
    }
}
