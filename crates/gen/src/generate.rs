//! Synthetic design generation: floorplan, clustered netlist, compact
//! reference placement, and routing-capacity calibration.

use rdp_db::{
    Cell, CellId, Design, DesignBuilder, Dir, Obstruction, PgRail, Point, Rect, RoutingLayer,
    RoutingSpec, Row,
};
use rdp_route::{GlobalRouter, RouterConfig};
use rdp_testkit::Rng;

use crate::params::GenParams;

const ROW_HEIGHT: f64 = 2.0;
const SITE_WIDTH: f64 = 0.2;
/// Standard-cell widths (microns) and their sampling weights.
const CELL_WIDTHS: [(f64, f64); 4] = [(0.8, 0.4), (1.2, 0.3), (1.6, 0.2), (2.4, 0.1)];

/// Generates a synthetic design from parameters.
///
/// The result is deterministic in `(name, params)` — the RNG seed lives in
/// [`GenParams::seed`]. Cells come out in a compact cluster-ordered
/// "tile" placement (a plausible legal-ish starting point that the
/// placement flow re-optimizes), and the routing capacity is calibrated
/// against a trial routing of that placement so every design exhibits the
/// congestion stress its [`GenParams::congestion_margin`] asks for.
pub fn generate(name: &str, params: &GenParams) -> Design {
    let mut rng = Rng::new(params.seed);

    // ---- Cell population -------------------------------------------------
    let widths: Vec<f64> = (0..params.num_cells)
        .map(|_| sample_width(&mut rng))
        .collect();
    let cell_area: f64 = widths.iter().map(|w| w * ROW_HEIGHT).sum();

    // ---- Die sizing -------------------------------------------------------
    let die_area = cell_area / (params.utilization * (1.0 - params.macro_fraction));
    let mut w = (die_area / params.aspect).sqrt();
    let mut h = w * params.aspect;
    // Round to whole rows / sites.
    h = (h / ROW_HEIGHT).ceil() * ROW_HEIGHT;
    w = (w / SITE_WIDTH).ceil() * SITE_WIDTH;
    let die = Rect::new(0.0, 0.0, w, h);

    let mut b = DesignBuilder::new(name, die);

    // ---- Rows --------------------------------------------------------------
    let num_rows = (h / ROW_HEIGHT) as usize;
    for r in 0..num_rows {
        b.add_row(Row {
            y: r as f64 * ROW_HEIGHT,
            height: ROW_HEIGHT,
            x0: 0.0,
            x1: w,
            site_w: SITE_WIDTH,
        });
    }

    // ---- Macros -----------------------------------------------------------
    let mut macro_rects: Vec<Rect> = Vec::new();
    if params.num_macros > 0 {
        let total = params.macro_fraction * die.area();
        let each = total / params.num_macros as f64;
        let g = (params.num_macros as f64).sqrt().ceil() as usize;
        let region = Rect::new(0.12 * w, 0.12 * h, 0.88 * w, 0.88 * h);
        let slot_w = region.width() / g as f64;
        let slot_h = region.height() / g.max(params.num_macros.div_ceil(g)) as f64;
        for i in 0..params.num_macros {
            let aspect = rng.gen_range(0.7f64..1.4);
            let mw = (each * aspect).sqrt().min(slot_w * 0.85);
            let mh = (each / aspect).sqrt().min(slot_h * 0.85);
            let cx = region.lo.x + (i % g) as f64 * slot_w + slot_w / 2.0;
            let cy = region.lo.y + (i / g) as f64 * slot_h + slot_h / 2.0;
            // Snap macro bottom to a row boundary for realism.
            let cy = ((cy - mh / 2.0) / ROW_HEIGHT).round() * ROW_HEIGHT + mh / 2.0;
            let rect = Rect::centered(Point::new(cx, cy), mw, mh);
            macro_rects.push(rect);
            b.add_cell(Cell::fixed_macro(format!("m{i}"), mw, mh), rect.center());
        }
    }
    let macro_ids: Vec<CellId> = (0..params.num_macros).map(CellId::from_index).collect();

    // ---- Standard cells (positions filled by tiling below) ----------------
    let first_std = b.num_cells();
    for (i, &cw) in widths.iter().enumerate() {
        b.add_cell(Cell::std(format!("u{i}"), cw, ROW_HEIGHT), die.center());
    }

    // ---- Terminals on the boundary -----------------------------------------
    let first_term = b.num_cells();
    for t in 0..params.io_terminals {
        let frac = (t as f64 + 0.5) / params.io_terminals as f64;
        let perim = 2.0 * (w + h);
        let d = frac * perim;
        let p = if d < w {
            Point::new(d, 0.0)
        } else if d < w + h {
            Point::new(w, d - w)
        } else if d < 2.0 * w + h {
            Point::new(2.0 * w + h - d, h)
        } else {
            Point::new(0.0, perim - d)
        };
        b.add_cell(Cell::terminal(format!("io{t}")), p);
    }

    // ---- Clustered netlist --------------------------------------------------
    let n = params.num_cells;
    let cs = params.cluster_size.max(2);
    let n_clusters = n.div_ceil(cs);
    let cell_of = |cluster: usize, rng: &mut Rng| -> CellId {
        let lo = cluster * cs;
        let hi = ((cluster + 1) * cs).min(n);
        CellId::from_index(first_std + rng.gen_range(lo..hi))
    };
    let num_nets = (params.nets_per_cell * n as f64).round() as usize;
    let mut net_idx = 0usize;
    for _ in 0..num_nets {
        let anchor = rng.gen_range(0..n_clusters);
        let degree = if rng.gen_bool(params.two_pin_frac) {
            2
        } else {
            // 3 + geometric tail, capped at 8.
            let mut d = 3;
            while d < 8 && rng.gen_bool(0.45) {
                d += 1;
            }
            d
        };
        let mut members: Vec<CellId> = Vec::with_capacity(degree);
        members.push(cell_of(anchor, &mut rng));
        let mut guard = 0;
        while members.len() < degree && guard < 50 {
            guard += 1;
            let cluster = if rng.gen_bool(0.72) {
                anchor
            } else if rng.gen_bool(0.8) {
                // A nearby cluster: locality with geometric falloff.
                let mut step = 1usize;
                while step < 4 && rng.gen_bool(0.4) {
                    step += 1;
                }
                if rng.gen_bool(0.5) {
                    anchor.saturating_sub(step)
                } else {
                    (anchor + step).min(n_clusters - 1)
                }
            } else {
                rng.gen_range(0..n_clusters)
            };
            let c = cell_of(cluster, &mut rng);
            if !members.contains(&c) {
                members.push(c);
            }
        }
        if members.len() < 2 {
            continue;
        }
        add_signal_net(&mut b, &mut rng, net_idx, &members, &widths, first_std);
        net_idx += 1;
    }

    // High-fanout nets spanning many clusters (global congestion drivers).
    for _ in 0..params.high_fanout_nets {
        let degree = rng.gen_range(12..40);
        let mut members = Vec::with_capacity(degree);
        let mut guard = 0;
        while members.len() < degree && guard < 200 {
            guard += 1;
            let c = cell_of(rng.gen_range(0..n_clusters), &mut rng);
            if !members.contains(&c) {
                members.push(c);
            }
        }
        add_signal_net(&mut b, &mut rng, net_idx, &members, &widths, first_std);
        net_idx += 1;
    }

    // Terminal nets: each I/O connects into 1–3 random clusters.
    for t in 0..params.io_terminals {
        let io = CellId::from_index(first_term + t);
        let fanout = rng.gen_range(1..=3);
        let mut members = vec![io];
        for _ in 0..fanout {
            let c = cell_of(rng.gen_range(0..n_clusters), &mut rng);
            if !members.contains(&c) {
                members.push(c);
            }
        }
        if members.len() < 2 {
            continue;
        }
        let pins = members
            .iter()
            .map(|&c| {
                if c == io {
                    (c, Point::default())
                } else {
                    (c, pin_offset(&mut rng, widths[c.index() - first_std]))
                }
            })
            .collect();
        b.add_net(format!("ionet{t}"), pins);
    }

    // A couple of macro connectivity nets so macros are not isolated.
    for (i, &m) in macro_ids.iter().enumerate() {
        let mut members = vec![m];
        for _ in 0..6 {
            let c = cell_of(rng.gen_range(0..n_clusters), &mut rng);
            if !members.contains(&c) {
                members.push(c);
            }
        }
        let pins = members
            .iter()
            .map(|&c| {
                if c == m {
                    (c, Point::default())
                } else {
                    (c, pin_offset(&mut rng, widths[c.index() - first_std]))
                }
            })
            .collect();
        b.add_net(format!("mnet{i}"), pins);
    }

    // ---- Scenario extensions -----------------------------------------------
    // Each extension draws from its own forked RNG stream keyed off the
    // seed, so enabling one does not perturb the base stream: default
    // parameters keep the generated design byte-identical.
    if params.global_net_frac > 0.0 && n > 0 {
        // High-Rent-style long-range nets: members drawn uniformly over
        // all clusters, ignoring locality.
        let mut grng = Rng::new(params.seed ^ 0x9e37_79b9_7f4a_7c15);
        let extra = (params.global_net_frac * n as f64).round() as usize;
        for g in 0..extra {
            let degree = grng.gen_range(2..5);
            let mut members: Vec<CellId> = Vec::with_capacity(degree);
            let mut guard = 0;
            while members.len() < degree && guard < 50 {
                guard += 1;
                let c = cell_of(grng.gen_range(0..n_clusters), &mut grng);
                if !members.contains(&c) {
                    members.push(c);
                }
            }
            if members.len() < 2 {
                continue;
            }
            let pins = members
                .iter()
                .map(|&c| (c, pin_offset(&mut grng, widths[c.index() - first_std])))
                .collect();
            b.add_net(format!("gnet{g}"), pins);
        }
    }
    if params.hotspot_clusters > 0 && n > 0 {
        // Pin-density hotspots: a burst of dense local nets inside a few
        // anchor clusters.
        let mut hrng = Rng::new(params.seed ^ 0xd1b5_4a32_d192_ed03);
        for hs in 0..params.hotspot_clusters {
            let anchor = hrng.gen_range(0..n_clusters);
            for k in 0..12 {
                let degree = hrng.gen_range(3..6);
                let mut members: Vec<CellId> = Vec::with_capacity(degree);
                let mut guard = 0;
                while members.len() < degree && guard < 50 {
                    guard += 1;
                    let c = cell_of(anchor, &mut hrng);
                    if !members.contains(&c) {
                        members.push(c);
                    }
                }
                if members.len() < 2 {
                    continue;
                }
                let pins = members
                    .iter()
                    .map(|&c| (c, pin_offset(&mut hrng, widths[c.index() - first_std])))
                    .collect();
                b.add_net(format!("hsnet{hs}_{k}"), pins);
            }
        }
    }
    if params.obstruction_layers > 0 {
        // Macro footprints double as explicit routing obstructions on the
        // lowest layers (on top of the implicit macro blockage model).
        for r in &macro_rects {
            for l in 0..params.obstruction_layers.min(params.num_layers).min(255) {
                b.add_obstruction(Obstruction {
                    layer: l as u8,
                    rect: *r,
                });
            }
        }
    }
    if params.random_obstructions > 0 {
        let mut orng = Rng::new(params.seed ^ 0x94d0_49bb_1331_11eb);
        for _ in 0..params.random_obstructions {
            let ow = (0.05 + 0.10 * orng.next_f64()) * w;
            let oh = (0.05 + 0.10 * orng.next_f64()) * h;
            let x = orng.next_f64() * (w - ow).max(0.0);
            let y = orng.next_f64() * (h - oh).max(0.0);
            let layer = orng.gen_range(0..params.num_layers.clamp(1, 255)) as u8;
            b.add_obstruction(Obstruction {
                layer,
                rect: Rect::new(x, y, x + ow, y + oh),
            });
        }
    }

    // ---- PG rails: vertical stripes on M2 ----------------------------------
    let pitch = if params.rail_pitch > 1.0 {
        params.rail_pitch
    } else if params.rail_pitch > 0.0 {
        w / 14.0
    } else {
        0.0
    };
    if pitch > 0.0 {
        let thickness = 0.4;
        let mut x = pitch / 2.0;
        while x < w {
            b.add_rail(PgRail {
                layer: 1,
                dir: Dir::Vertical,
                rect: Rect::new(x - thickness / 2.0, 0.0, x + thickness / 2.0, h),
            });
            x += pitch;
        }
    }

    // ---- Provisional routing spec; G-cell grid is a power of two ----------
    let gx = pow2_grid(w / 6.0);
    let gy = pow2_grid(h / 6.0);
    b.routing(RoutingSpec::uniform(params.num_layers, 1.0, gx, gy));

    let mut design = b.build().expect("generator produced an invalid design");

    // ---- Compact reference placement ---------------------------------------
    tile_placement(&mut design);

    // FPGA-style discrete sites: snap the reference placement onto the
    // coarse site grid before capacity calibration sees it.
    if params.site_grid > 0.0 {
        let die = design.die();
        let movable: Vec<CellId> = design.movable_cells().collect();
        for cid in movable {
            let p = design.pos(cid);
            let snapped = Point::new((p.x / params.site_grid).round() * params.site_grid, p.y);
            design.set_pos(cid, die.clamp_point(snapped));
        }
    }

    // ---- Capacity calibration ----------------------------------------------
    calibrate_capacity(&mut design, params);

    // Track pitch: each H/V layer pair shares a pitch that grows with
    // height in the stack, as real metal stacks do.
    if params.track_pitch > 0.0 {
        let mut spec = design.routing().clone();
        for (i, l) in spec.layers.iter_mut().enumerate() {
            l.pitch = params.track_pitch * (1.0 + (i / 2) as f64);
        }
        design.set_routing(spec);
    }

    design
}

fn add_signal_net(
    b: &mut DesignBuilder,
    rng: &mut Rng,
    idx: usize,
    members: &[CellId],
    widths: &[f64],
    first_std: usize,
) {
    let pins = members
        .iter()
        .map(|&c| (c, pin_offset(rng, widths[c.index() - first_std])))
        .collect();
    b.add_net(format!("n{idx}"), pins);
}

fn pin_offset(rng: &mut Rng, cell_w: f64) -> Point {
    Point::new(
        rng.gen_range(-0.4 * cell_w..0.4 * cell_w),
        rng.gen_range(-0.4 * ROW_HEIGHT..0.4 * ROW_HEIGHT),
    )
}

fn sample_width(rng: &mut Rng) -> f64 {
    let r: f64 = rng.next_f64();
    let mut acc = 0.0;
    for &(w, p) in &CELL_WIDTHS {
        acc += p;
        if r < acc {
            return w;
        }
    }
    CELL_WIDTHS[CELL_WIDTHS.len() - 1].0
}

fn pow2_grid(target: f64) -> usize {
    let mut g = 16usize;
    while (g as f64) < target && g < 128 {
        g <<= 1;
    }
    g
}

/// Places movable cells compactly in id (= cluster) order, skipping macro
/// footprints: a deterministic, near-legal reference placement used for
/// capacity calibration and as the generated design's starting point.
pub fn tile_placement(design: &mut Design) {
    let die = design.die();
    let rows: Vec<Row> = design.rows().to_vec();
    let macro_rects: Vec<Rect> = design
        .macros()
        .map(|m| design.cell_rect(m).expanded(0.4))
        .collect();

    // Total width to place vs. row capacity determines the per-cell gap.
    let movable: Vec<CellId> = design.movable_cells().collect();
    let total_w: f64 = movable.iter().map(|&c| design.cell(c).w).sum();
    let mut row_capacity = 0.0;
    for row in &rows {
        let mut cap = row.width();
        for m in &macro_rects {
            if m.lo.y < row.y + row.height && row.y < m.hi.y {
                cap -= (m.hi.x.min(row.x1) - m.lo.x.max(row.x0)).max(0.0);
            }
        }
        row_capacity += cap.max(0.0);
    }
    let slack = ((row_capacity / total_w.max(1e-9)) - 1.0).max(0.0);

    let mut row_i = 0usize;
    let mut cursor = rows.first().map(|r| r.x0).unwrap_or(0.0);
    for &cid in &movable {
        let cw = design.cell(cid).w;
        let gap = cw * slack;
        loop {
            if row_i >= rows.len() {
                // Out of rows (should not happen with util < 1): stack at top.
                row_i = rows.len() - 1;
                break;
            }
            let row = rows[row_i];
            // Skip macro spans.
            let y_lo = row.y;
            let y_hi = row.y + row.height;
            let mut moved = false;
            for m in &macro_rects {
                if m.lo.y < y_hi && y_lo < m.hi.y && cursor + cw > m.lo.x && cursor < m.hi.x {
                    cursor = m.hi.x;
                    moved = true;
                }
            }
            if cursor + cw <= row.x1 {
                break;
            }
            if !moved || cursor + cw > row.x1 {
                row_i += 1;
                cursor = rows.get(row_i).map(|r| r.x0).unwrap_or(0.0);
            }
        }
        let row = rows[row_i.min(rows.len() - 1)];
        let p = Point::new(cursor + cw / 2.0, row.y + row.height / 2.0);
        design.set_pos(cid, die.clamp_point(p));
        cursor += cw + gap;
    }
}

/// Routes the design's **current placement** and rescales the layer stack
/// so that the requested per-direction demand quantile exactly saturates
/// capacity: `margin = 0.9` leaves ~10 % of G-cells over capacity.
///
/// The generator applies this once against the compact tile placement;
/// the experiment harness re-applies it against a wirelength-driven
/// placement to pin each design's congestion stress to a calibrated
/// baseline level (the per-design "technology" choice).
pub fn calibrate_routing(design: &Design, margin: f64) -> RoutingSpec {
    let cfg = RouterConfig {
        passes: 1,
        z_candidates: 2,
        ..RouterConfig::default()
    };
    let result = GlobalRouter::new(cfg).route(design);

    let cap_h = quantile(result.maps.h_demand.as_slice(), margin).max(4.0);
    let cap_v = quantile(result.maps.v_demand.as_slice(), margin).max(4.0);

    let spec = design.routing();
    let n_h = spec
        .layers
        .iter()
        .filter(|l| l.dir == Dir::Horizontal)
        .count();
    let n_v = spec.layers.len() - n_h;
    let layers = spec
        .layers
        .iter()
        .map(|l| RoutingLayer {
            name: l.name.clone(),
            dir: l.dir,
            capacity: match l.dir {
                Dir::Horizontal => cap_h / n_h.max(1) as f64,
                Dir::Vertical => cap_v / n_v.max(1) as f64,
            },
            pitch: l.pitch,
        })
        .collect();
    RoutingSpec {
        layers,
        gx: spec.gx,
        gy: spec.gy,
    }
}

/// Applies [`calibrate_routing`] to the generator's tile placement.
fn calibrate_capacity(design: &mut Design, params: &GenParams) {
    let spec = calibrate_routing(design, params.congestion_margin);
    design.set_routing(spec);
}

fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    if v.is_empty() {
        return 0.0;
    }
    let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::DesignStats;

    fn tiny_params() -> GenParams {
        GenParams {
            num_cells: 300,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.6,
            io_terminals: 8,
            high_fanout_nets: 2,
            rail_pitch: 1.0,
            seed: 7,
            ..GenParams::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = tiny_params();
        let a = generate("t", &p);
        let b = generate("t", &p);
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(a.num_nets(), b.num_nets());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.hpwl(), b.hpwl());
        assert_eq!(a.routing(), b.routing());
    }

    #[test]
    fn structure_matches_params() {
        let p = tiny_params();
        let d = generate("t", &p);
        let s = DesignStats::of(&d);
        assert_eq!(s.num_movable, 300);
        assert_eq!(s.num_macros, 2);
        assert_eq!(s.num_terminals, 8);
        assert!(s.num_nets > 250);
        assert!(s.avg_net_degree > 2.0 && s.avg_net_degree < 5.0);
        assert!(!d.rails().is_empty());
        assert!(!d.rows().is_empty());
    }

    #[test]
    fn utilization_near_target() {
        let p = tiny_params();
        let d = generate("t", &p);
        let u = d.utilization();
        assert!((u - 0.6).abs() < 0.1, "utilization {u}");
    }

    #[test]
    fn tile_placement_keeps_cells_inside_die_and_off_macros() {
        let p = tiny_params();
        let d = generate("t", &p);
        let die = d.die();
        let macro_rects: Vec<Rect> = d.macros().map(|m| d.cell_rect(m)).collect();
        for c in d.movable_cells() {
            let pos = d.pos(c);
            assert!(die.contains(pos), "cell {c} at {pos} outside die");
            for m in &macro_rects {
                assert!(!m.contains(pos), "cell {c} at {pos} inside macro {m}");
            }
        }
    }

    #[test]
    fn calibrated_capacity_produces_bounded_congestion() {
        let p = tiny_params();
        let d = generate("t", &p);
        let r = GlobalRouter::default().route(&d);
        let cong = r.congestion.max();
        // Some congestion must exist (margin < 1) but not be absurd.
        assert!(cong > 0.0, "no congestion at all");
        assert!(cong < 20.0, "implausible congestion {cong}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut p2 = tiny_params();
        p2.seed = 8;
        let a = generate("t", &tiny_params());
        let b = generate("t", &p2);
        assert_ne!(a.hpwl(), b.hpwl());
    }

    #[test]
    fn pow2_grid_bounds() {
        assert_eq!(pow2_grid(10.0), 16);
        assert_eq!(pow2_grid(17.0), 32);
        assert_eq!(pow2_grid(1000.0), 128);
    }

    #[test]
    fn quantile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
    }
}
