//! Scenario matrix: parameterized stress classes for the standing
//! Table-1 invariant suite.
//!
//! Each [`Scenario`] names one axis along which real designs stress a
//! routability flow — macro-dominated floorplans with explicit routing
//! obstructions, FPGA-style discrete site grids, high-Rent-exponent
//! netlists, near-100 % utilization, pin-density hotspots, single-row
//! cores — plus degenerate/adversarial shapes (a single cell, all-fixed
//! netlists, a full-die-span net, coincident pins with zero-area cells)
//! that the flow must *survive*, not optimize.
//!
//! The matrix harness runs every class through the three flow presets and
//! gates the Table-1 QoR ordering `Ours ≤ Xplace-Route ≤ Xplace` on the
//! DRV proxy, with a per-class tolerance. Degenerate classes set
//! [`Scenario::ordering_gated`] to `false`: they only assert survival
//! (completion with warnings, never a panic or divergence).

use rdp_db::{Cell, CellKind, Design, DesignBuilder, Point, Rect, RoutingSpec, Row};

use crate::{generate, GenParams};

/// Instance scale of a scenario build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized instances (a few hundred cells): seconds per flow run.
    Small,
    /// Nightly-sized instances (a few thousand cells).
    Full,
}

impl Scale {
    /// Picks the per-scale variant of a quantity.
    fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// The stress classes of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioClass {
    /// Plain mid-utilization design; the control row of the matrix.
    Baseline,
    /// Macro-dominated floorplan with explicit multi-layer obstructions.
    MacroObstructed,
    /// FPGA-style discrete site grid with per-layer track pitches.
    FpgaSites,
    /// High-Rent-exponent netlist: heavy long-range connectivity.
    HighRent,
    /// Near-100 % utilization core.
    NearFullUtil,
    /// Clustered pin-density hotspots.
    PinHotspots,
    /// Degenerate single-row core (extreme aspect ratio).
    SingleRowCore,
    /// Maze of standalone routing blockages.
    ObstructionMaze,
    /// Adversarial: one movable cell.
    SingleCell,
    /// Adversarial: every cell fixed (zero movable area).
    AllFixed,
    /// Adversarial: a net spanning the whole die.
    FullDieNet,
    /// Adversarial: coincident pins and zero-area fixed cells.
    CoincidentPins,
}

/// One row of the scenario matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The stress class.
    pub class: ScenarioClass,
    /// Stable name used in reports and CLI filters.
    pub name: &'static str,
    /// One-line description of the stress axis.
    pub description: &'static str,
    /// Whether the `Ours ≤ Xplace-Route ≤ Xplace` DRV ordering gate
    /// applies. Degenerate classes only assert survival.
    pub ordering_gated: bool,
    /// Relative slack of the ordering gate: `a ≤ b·(1+tolerance)+slack`.
    pub tolerance: f64,
    /// Absolute DRV slack of the ordering gate.
    pub abs_slack: f64,
}

impl Scenario {
    /// Generator parameters for this class, or `None` for the hand-built
    /// degenerate classes.
    pub fn params(&self, scale: Scale) -> Option<GenParams> {
        let cells = |small: usize, full: usize| scale.pick(small, full);
        let p = match self.class {
            ScenarioClass::Baseline => GenParams {
                num_cells: cells(400, 4000),
                utilization: 0.65,
                congestion_margin: 0.90,
                seed: 9001,
                ..GenParams::default()
            },
            ScenarioClass::MacroObstructed => GenParams {
                num_cells: cells(400, 4000),
                num_macros: scale.pick(4, 8),
                macro_fraction: 0.30,
                utilization: 0.50,
                obstruction_layers: 4,
                congestion_margin: 0.92,
                seed: 9002,
                ..GenParams::default()
            },
            ScenarioClass::FpgaSites => GenParams {
                num_cells: cells(400, 4000),
                utilization: 0.55,
                site_grid: 1.6,
                track_pitch: 0.4,
                congestion_margin: 0.92,
                seed: 9003,
                ..GenParams::default()
            },
            ScenarioClass::HighRent => GenParams {
                num_cells: cells(400, 4000),
                utilization: 0.55,
                cluster_size: 24,
                global_net_frac: 0.25,
                congestion_margin: 0.90,
                seed: 9004,
                ..GenParams::default()
            },
            ScenarioClass::NearFullUtil => GenParams {
                num_cells: cells(400, 4000),
                utilization: 0.97,
                congestion_margin: 0.93,
                seed: 9005,
                ..GenParams::default()
            },
            ScenarioClass::PinHotspots => GenParams {
                num_cells: cells(400, 4000),
                utilization: 0.60,
                hotspot_clusters: scale.pick(3, 6),
                congestion_margin: 0.92,
                seed: 9006,
                ..GenParams::default()
            },
            ScenarioClass::SingleRowCore => GenParams {
                num_cells: cells(150, 600),
                utilization: 0.60,
                aspect: scale.pick(0.004, 0.001),
                io_terminals: 8,
                high_fanout_nets: 0,
                congestion_margin: 0.95,
                seed: 9007,
                ..GenParams::default()
            },
            ScenarioClass::ObstructionMaze => GenParams {
                num_cells: cells(400, 4000),
                num_macros: 2,
                macro_fraction: 0.12,
                utilization: 0.55,
                obstruction_layers: 2,
                random_obstructions: scale.pick(12, 24),
                congestion_margin: 0.93,
                seed: 9008,
                ..GenParams::default()
            },
            ScenarioClass::SingleCell
            | ScenarioClass::AllFixed
            | ScenarioClass::FullDieNet
            | ScenarioClass::CoincidentPins => return None,
        };
        Some(p)
    }

    /// Builds the design instance for this class at the given scale.
    ///
    /// # Panics
    ///
    /// Panics only on an internal inconsistency of the hand-built
    /// degenerate designs (their builders are total for both scales).
    pub fn build(&self, scale: Scale) -> Design {
        if let Some(p) = self.params(scale) {
            return generate(self.name, &p);
        }
        match self.class {
            ScenarioClass::SingleCell => build_single_cell(),
            ScenarioClass::AllFixed => build_all_fixed(),
            ScenarioClass::FullDieNet => build_full_die_net(scale),
            ScenarioClass::CoincidentPins => build_coincident_pins(),
            _ => unreachable!("generator classes handled above"),
        }
    }
}

/// The full scenario matrix, in report order.
pub fn scenario_matrix() -> Vec<Scenario> {
    fn gated(class: ScenarioClass, name: &'static str, description: &'static str) -> Scenario {
        Scenario {
            class,
            name,
            description,
            ordering_gated: true,
            tolerance: 0.15,
            abs_slack: 25.0,
        }
    }
    fn survival(class: ScenarioClass, name: &'static str, description: &'static str) -> Scenario {
        Scenario {
            class,
            name,
            description,
            ordering_gated: false,
            tolerance: f64::INFINITY,
            abs_slack: f64::INFINITY,
        }
    }
    vec![
        gated(
            ScenarioClass::Baseline,
            "baseline",
            "mid-utilization control design",
        ),
        gated(
            ScenarioClass::MacroObstructed,
            "macro_obstructed",
            "macro-dominated floorplan with multi-layer obstructions",
        ),
        gated(
            ScenarioClass::FpgaSites,
            "fpga_sites",
            "discrete site grid with per-layer track pitches",
        ),
        gated(
            ScenarioClass::HighRent,
            "high_rent",
            "high-Rent-exponent netlist (long-range connectivity)",
        ),
        gated(
            ScenarioClass::NearFullUtil,
            "near_full_util",
            "97 % utilization core",
        ),
        gated(
            ScenarioClass::PinHotspots,
            "pin_hotspots",
            "clustered pin-density hotspots",
        ),
        gated(
            ScenarioClass::SingleRowCore,
            "single_row_core",
            "extreme-aspect single-row core",
        ),
        gated(
            ScenarioClass::ObstructionMaze,
            "obstruction_maze",
            "maze of standalone routing blockages",
        ),
        survival(
            ScenarioClass::SingleCell,
            "single_cell",
            "one movable cell (survival only)",
        ),
        survival(
            ScenarioClass::AllFixed,
            "all_fixed",
            "every cell fixed, zero movable area (survival only)",
        ),
        survival(
            ScenarioClass::FullDieNet,
            "full_die_net",
            "net spanning the whole die (survival only)",
        ),
        survival(
            ScenarioClass::CoincidentPins,
            "coincident_pins",
            "coincident pins and zero-area cells (survival only)",
        ),
    ]
}

/// Looks a scenario up by its stable name.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    scenario_matrix().into_iter().find(|s| s.name == name)
}

fn add_rows(b: &mut DesignBuilder, die: Rect, row_h: f64, site_w: f64) {
    let n = (die.height() / row_h).floor().max(1.0) as usize;
    for r in 0..n {
        b.add_row(Row {
            y: die.lo.y + r as f64 * row_h,
            height: row_h,
            x0: die.lo.x,
            x1: die.hi.x,
            site_w,
        });
    }
}

fn build_single_cell() -> Design {
    let die = Rect::new(0.0, 0.0, 20.0, 20.0);
    let mut b = DesignBuilder::new("single_cell", die);
    add_rows(&mut b, die, 2.0, 0.2);
    let u = b.add_cell(Cell::std("u0", 1.2, 2.0), die.center());
    let io = b.add_cell(Cell::terminal("io0"), Point::new(0.0, 10.0));
    b.add_net("n0", vec![(u, Point::default()), (io, Point::default())]);
    b.routing(RoutingSpec::uniform(4, 8.0, 16, 16));
    b.build().expect("single-cell design is valid")
}

fn build_all_fixed() -> Design {
    let die = Rect::new(0.0, 0.0, 30.0, 30.0);
    let mut b = DesignBuilder::new("all_fixed", die);
    add_rows(&mut b, die, 2.0, 0.2);
    let mut ids = Vec::new();
    for i in 0..9 {
        let x = 5.0 + (i % 3) as f64 * 10.0;
        let y = 5.0 + (i / 3) as f64 * 10.0;
        let cell = Cell {
            name: format!("f{i}"),
            kind: CellKind::Std,
            w: 1.2,
            h: 2.0,
            fixed: true,
        };
        ids.push(b.add_cell(cell, Point::new(x, y)));
    }
    for i in 0..8 {
        b.add_net(
            format!("n{i}"),
            vec![(ids[i], Point::default()), (ids[i + 1], Point::default())],
        );
    }
    b.routing(RoutingSpec::uniform(4, 8.0, 16, 16));
    b.build().expect("all-fixed design is valid")
}

fn build_full_die_net(scale: Scale) -> Design {
    let side = scale.pick(40.0, 120.0);
    let n_cells = scale.pick(24usize, 200usize);
    let die = Rect::new(0.0, 0.0, side, side);
    let mut b = DesignBuilder::new("full_die_net", die);
    add_rows(&mut b, die, 2.0, 0.2);
    let cols = (n_cells as f64).sqrt().ceil() as usize;
    let mut ids = Vec::new();
    for i in 0..n_cells {
        let x = (i % cols) as f64 / cols as f64 * (side - 4.0) + 2.0;
        let y = (i / cols) as f64 / cols as f64 * (side - 4.0) + 2.0;
        ids.push(b.add_cell(Cell::std(format!("u{i}"), 1.2, 2.0), Point::new(x, y)));
    }
    let corners = [
        Point::new(0.0, 0.0),
        Point::new(side, 0.0),
        Point::new(side, side),
        Point::new(0.0, side),
    ];
    let mut corner_ids = Vec::new();
    for (i, &p) in corners.iter().enumerate() {
        corner_ids.push(b.add_cell(Cell::terminal(format!("io{i}")), p));
    }
    // The adversarial construct: one net whose pins span the entire die.
    let mut span: Vec<_> = corner_ids.iter().map(|&c| (c, Point::default())).collect();
    span.push((ids[0], Point::default()));
    b.add_net("span", span);
    for i in 0..n_cells - 1 {
        b.add_net(
            format!("n{i}"),
            vec![(ids[i], Point::default()), (ids[i + 1], Point::default())],
        );
    }
    b.routing(RoutingSpec::uniform(4, 8.0, 16, 16));
    b.build().expect("full-die-net design is valid")
}

fn build_coincident_pins() -> Design {
    let die = Rect::new(0.0, 0.0, 20.0, 20.0);
    let mut b = DesignBuilder::new("coincident_pins", die);
    add_rows(&mut b, die, 2.0, 0.2);
    let c = die.center();
    let mut ids = Vec::new();
    // Every movable cell starts at the exact same point.
    for i in 0..10 {
        ids.push(b.add_cell(Cell::std(format!("u{i}"), 1.0, 2.0), c));
    }
    // A zero-area fixed cell participating in the netlist.
    let z = b.add_cell(
        Cell {
            name: "z0".into(),
            kind: CellKind::Std,
            w: 0.0,
            h: 0.0,
            fixed: true,
        },
        Point::new(5.0, 5.0),
    );
    for i in 0..9 {
        // Zero offsets: coincident pins on coincident cells.
        b.add_net(
            format!("n{i}"),
            vec![(ids[i], Point::default()), (ids[i + 1], Point::default())],
        );
    }
    b.add_net(
        "nz",
        vec![(z, Point::default()), (ids[0], Point::default())],
    );
    b.routing(RoutingSpec::uniform(4, 8.0, 16, 16));
    b.build().expect("coincident-pins design is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_unique_names_and_enough_classes() {
        let m = scenario_matrix();
        assert!(m.len() >= 8, "matrix too small: {}", m.len());
        let mut names: Vec<_> = m.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), m.len());
    }

    #[test]
    fn every_scenario_builds_small() {
        for s in scenario_matrix() {
            let d = s.build(Scale::Small);
            assert!(
                d.validate().is_empty() || !s.ordering_gated,
                "{}: {:?}",
                s.name,
                d.validate()
            );
            assert!(d.num_cells() > 0, "{}", s.name);
            assert!(d.num_nets() > 0, "{}", s.name);
        }
    }

    #[test]
    fn degenerate_classes_are_survival_only() {
        for s in scenario_matrix() {
            match s.class {
                ScenarioClass::SingleCell
                | ScenarioClass::AllFixed
                | ScenarioClass::FullDieNet
                | ScenarioClass::CoincidentPins => assert!(!s.ordering_gated, "{}", s.name),
                _ => assert!(s.ordering_gated, "{}", s.name),
            }
        }
    }

    #[test]
    fn obstructed_classes_carry_obstructions() {
        let d = scenario_by_name("macro_obstructed")
            .unwrap()
            .build(Scale::Small);
        assert!(!d.obstructions().is_empty());
        let d = scenario_by_name("obstruction_maze")
            .unwrap()
            .build(Scale::Small);
        assert!(d.obstructions().len() >= 12);
    }

    #[test]
    fn fpga_sites_has_layer_pitches() {
        let d = scenario_by_name("fpga_sites").unwrap().build(Scale::Small);
        assert!(d.routing().layers.iter().all(|l| l.pitch > 0.0));
    }

    #[test]
    fn single_row_core_is_single_row() {
        let d = scenario_by_name("single_row_core")
            .unwrap()
            .build(Scale::Small);
        assert!(d.rows().len() <= 2, "rows: {}", d.rows().len());
    }
}
