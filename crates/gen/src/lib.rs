//! # rdp-gen — synthetic ISPD-2015-like benchmark suite
//!
//! The paper evaluates on the ISPD 2015 detailed-routing-driven placement
//! contest benchmarks, which are not redistributable here. This crate
//! generates a deterministic synthetic suite with the same 20 design
//! names, mirrored relative scale (superblue ≫ matrix_mult ≫ fft), macro
//! structure, clustered Rent-style connectivity, vertical M2 PG rails, and
//! per-design routing-capacity stress — everything the paper's three
//! techniques are sensitive to.
//!
//! ```
//! use rdp_gen::{generate, GenParams};
//!
//! let design = generate("demo", &GenParams { num_cells: 500, ..GenParams::default() });
//! assert_eq!(design.movable_cells().count(), 500);
//! ```
//!
//! The full suite:
//!
//! ```no_run
//! for entry in rdp_gen::ispd2015_suite() {
//!     let design = rdp_gen::generate(entry.name, &entry.params);
//!     println!("{}: {} cells", design.name(), design.num_cells());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod params;
mod scenario;

pub use generate::{calibrate_routing, generate, tile_placement};
pub use params::{ispd2015_suite, GenParams, SuiteEntry};
pub use scenario::{scenario_by_name, scenario_matrix, Scale, Scenario, ScenarioClass};

/// Generates one of the 20 named suite designs, or `None` for an unknown
/// name.
pub fn generate_named(name: &str) -> Option<rdp_db::Design> {
    generate_named_obs(name, &rdp_obs::Collector::disabled())
}

/// [`generate_named`] with the synthesis timed under a `gen_synthesize`
/// span, so `--profile` covers benchmark generation too.
pub fn generate_named_obs(name: &str, obs: &rdp_obs::Collector) -> Option<rdp_db::Design> {
    let _span = obs.span("gen_synthesize", "gen");
    ispd2015_suite()
        .into_iter()
        .find(|e| e.name == name)
        .map(|e| generate(e.name, &e.params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_named_known_and_unknown() {
        assert!(generate_named("nonexistent").is_none());
        let d = generate_named("fft_a").expect("fft_a is in the suite");
        assert_eq!(d.name(), "fft_a");
        assert!(d.macros().count() > 0);
    }
}
