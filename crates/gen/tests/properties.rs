//! Property tests for the benchmark generator (rdp-testkit harness).

use rdp_gen::{generate, GenParams};
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, PropConfig};

type ParamTuple = (usize, usize, f64, f64, f64, u64);

/// Generator over the parameter space the proptest version explored.
fn arb_params() -> impl rdp_testkit::Gen<Value = ParamTuple> {
    (
        range(50usize..500),
        range(0usize..4),
        range(0.25f64..0.8),
        range(0.5f64..0.99),
        range(0.4f64..0.85),
        range(1u64..10_000),
    )
}

fn params_of((cells, macros, util, margin, two_pin, seed): ParamTuple) -> GenParams {
    GenParams {
        num_cells: cells,
        num_macros: macros,
        macro_fraction: if macros == 0 { 0.0 } else { 0.18 },
        utilization: util,
        congestion_margin: margin,
        two_pin_frac: two_pin,
        io_terminals: 4,
        high_fanout_nets: 2,
        rail_pitch: 1.0,
        seed,
        ..GenParams::default()
    }
}

/// Structure always matches the requested parameters.
#[test]
fn structure_matches_params() {
    prop_check!(PropConfig::cases(24), arb_params(), |t: ParamTuple| {
        let params = params_of(t);
        let d = generate("p", &params);
        prop_assert_eq!(d.movable_cells().count(), params.num_cells);
        prop_assert_eq!(d.macros().count(), params.num_macros);
        prop_assert!(d.num_nets() > params.num_cells / 2);
        // Utilization lands near the target.
        prop_assert!(
            (d.utilization() - params.utilization).abs() < 0.12,
            "util {} target {}",
            d.utilization(),
            params.utilization
        );
        // Routing grid dims are powers of two (required by the solver).
        prop_assert!(d.routing().gx.is_power_of_two());
        prop_assert!(d.routing().gy.is_power_of_two());
        Ok(())
    });
}

/// Determinism: same params → identical design.
#[test]
fn generation_is_deterministic() {
    prop_check!(PropConfig::cases(24), arb_params(), |t: ParamTuple| {
        let params = params_of(t);
        let a = generate("p", &params);
        let b = generate("p", &params);
        prop_assert_eq!(a.positions(), b.positions());
        prop_assert_eq!(a.hpwl(), b.hpwl());
        prop_assert_eq!(a.routing(), b.routing());
        Ok(())
    });
}

/// The tile placement keeps every movable cell inside the die and off
/// macro footprints.
#[test]
fn tile_placement_is_clean() {
    prop_check!(PropConfig::cases(24), arb_params(), |t: ParamTuple| {
        let d = generate("p", &params_of(t));
        let die = d.die();
        let macros: Vec<_> = d.macros().map(|m| d.cell_rect(m)).collect();
        for c in d.movable_cells() {
            let p = d.pos(c);
            prop_assert!(die.contains(p), "{} outside {}", p, die);
            for m in &macros {
                prop_assert!(!m.contains(p), "{} inside macro {}", p, m);
            }
        }
        Ok(())
    });
}

/// Two-pin fraction lands near the request (within sampling noise).
#[test]
fn two_pin_fraction_respected() {
    prop_check!(PropConfig::cases(24), arb_params(), |t: ParamTuple| {
        let params = params_of(t);
        let d = generate("p", &params);
        let two_pin = d.nets().iter().filter(|n| n.is_two_pin()).count() as f64;
        let frac = two_pin / d.num_nets() as f64;
        // Terminal/macro/high-fanout nets dilute the signal fraction.
        prop_assert!(
            (frac - params.two_pin_frac).abs() < 0.25,
            "frac {} target {}",
            frac,
            params.two_pin_frac
        );
        Ok(())
    });
}
