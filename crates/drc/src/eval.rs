//! The evaluation flow: fine-grid routing + DRV proxy.

use std::time::Instant;

use rdp_db::{Design, GridSpec, Map2d};
use rdp_route::{GlobalRouter, RouterConfig};

/// Configuration of the evaluation flow.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Evaluation grid refinement over the placement G-cell grid (2 ⇒
    /// twice the resolution in each axis; kept a power of two).
    pub refine: usize,
    /// Router used for the evaluation routing (more effort than the
    /// in-loop congestion estimator).
    pub router: RouterConfig,
    /// DRVs charged per track-unit of demand overflow in a fine G-cell.
    pub overflow_weight: f64,
    /// Pin-access budget in pins per square micron of fine G-cell area —
    /// roughly the M1 track resources available for pin escapes.
    pub pin_capacity_per_area: f64,
    /// DRVs charged per pin beyond the access budget.
    pub pin_weight: f64,
    /// Utilization (`Dmd/Cap`) above which a rail-covered cell counts as
    /// blocked.
    pub rail_block_utilization: f64,
    /// DRVs charged per blocked rail-covered cell.
    pub rail_weight: f64,
    /// Detour model: extra wirelength (in G-cell pitches) a detailed
    /// router spends per track-unit of overflow. Our pattern router only
    /// produces monotone routes; real detailed routers detour around
    /// congestion, which is what keeps DRWL comparable across placers in
    /// the paper's Table I.
    pub detour_pitches_per_overflow: f64,
    /// Extra vias per track-unit of overflow (each detour jogs layers).
    pub detour_vias_per_overflow: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            refine: 2,
            router: RouterConfig {
                passes: 3,
                z_candidates: 6,
                maze_rip_up: 200,
                ..RouterConfig::default()
            },
            overflow_weight: 1.0,
            pin_capacity_per_area: 2.2,
            pin_weight: 1.0,
            rail_block_utilization: 1.0,
            rail_weight: 0.5,
            detour_pitches_per_overflow: 4.0,
            detour_vias_per_overflow: 2.0,
        }
    }
}

/// Post-routing metrics — the per-design columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Detailed-routing wirelength proxy (microns).
    pub drwl: f64,
    /// Via count.
    pub drvias: f64,
    /// DRV proxy total.
    pub drvs: f64,
    /// DRVs from routing overflow.
    pub drv_overflow: f64,
    /// DRVs from pin-access overload.
    pub drv_pin_access: f64,
    /// DRVs from PG-rail blockage.
    pub drv_rail: f64,
    /// Routing wall-clock seconds (the RT column).
    pub route_seconds: f64,
    /// Fine G-cells with overflow.
    pub overflowed_gcells: usize,
    /// Discrete track shorts from the per-layer analysis (informational;
    /// not part of the DRV proxy sum).
    pub track_shorts: f64,
}

/// Routes the (legalized) placement on a refined grid and computes the
/// DRV proxy.
pub fn evaluate(design: &Design, cfg: &EvalConfig) -> EvalReport {
    let t0 = Instant::now();
    let base = design.gcell_grid();
    let refine = cfg.refine.max(1).next_power_of_two();
    let grid = GridSpec::new(base.region(), base.nx() * refine, base.ny() * refine);

    // Evaluation routing. Capacity per fine cell shrinks with the area,
    // which `CapacityMaps::build_on_grid` does NOT do by itself (capacity
    // is per G-cell of the layer stack) — so scale the router's view by
    // refining the demand instead: each fine cell holds 1/refine of the
    // coarse track budget. We express this by scaling layer capacities.
    let mut eval_design = design.clone();
    let mut spec = design.routing().clone();
    for layer in &mut spec.layers {
        layer.capacity /= refine as f64;
    }
    spec.gx = grid.nx();
    spec.gy = grid.ny();
    eval_design.set_routing(spec);

    let route = GlobalRouter::new(cfg.router.clone()).route(&eval_design);
    let route_seconds = t0.elapsed().as_secs_f64();

    // (a) overflow violations.
    let drv_overflow = cfg.overflow_weight * route.maps.total_overflow();
    let overflowed_gcells = route.maps.overflowed_gcells();

    // (b) pin-access violations, counted on the coarse G-cell grid: the
    // area budget is stable there, while the refined grid would turn
    // Poisson noise in pin positions into spurious violations.
    let mut pin_count = Map2d::<f64>::new(base.nx(), base.ny());
    for p in 0..design.num_pins() {
        let pos = design.pin_position(rdp_db::PinId::from_index(p));
        let (ix, iy) = base.bin_of(pos);
        pin_count[(ix, iy)] += 1.0;
    }
    let pin_cap = cfg.pin_capacity_per_area * base.bin_area();
    let mut drv_pin_access = 0.0;
    for (_, _, &c) in pin_count.iter_coords() {
        drv_pin_access += (c - pin_cap).max(0.0);
    }
    drv_pin_access *= cfg.pin_weight;

    // (c) PG-rail blockage violations: movable cells overlapping a rail
    // in a high-utilization fine cell.
    let charge = route.maps.charge_density();
    let mut drv_rail = 0.0;
    for c in design.movable_cells() {
        let rect = design.cell_rect(c);
        let covered = design.rails().iter().any(|r| r.rect.intersects(&rect));
        if !covered {
            continue;
        }
        let (ix, iy) = grid.bin_of(design.pos(c));
        if charge[(ix, iy)] > cfg.rail_block_utilization {
            drv_rail += cfg.rail_weight;
        }
    }

    // Per-layer discrete track accounting (diagnostic).
    let track_shorts = crate::tracks::track_analysis(&eval_design, &route, &grid).shorts;

    // Detour model: overflow forces the detailed router off the monotone
    // pattern, costing wirelength and layer jogs.
    let overflow = route.maps.total_overflow();
    let pitch = 0.5 * (grid.bin_w() + grid.bin_h());
    let drwl = route.wirelength + cfg.detour_pitches_per_overflow * pitch * overflow;
    let drvias = route.vias + cfg.detour_vias_per_overflow * overflow;

    EvalReport {
        drwl,
        drvias,
        drvs: drv_overflow + drv_pin_access + drv_rail,
        drv_overflow,
        drv_pin_access,
        drv_rail,
        route_seconds,
        overflowed_gcells,
        track_shorts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_gen::{generate, GenParams};
    use rdp_legal::{legalize, LegalizeConfig};

    fn design(margin: f64, seed: u64) -> Design {
        let mut d = generate(
            "e",
            &GenParams {
                num_cells: 500,
                num_macros: 2,
                macro_fraction: 0.12,
                utilization: 0.6,
                congestion_margin: margin,
                rail_pitch: 1.0,
                io_terminals: 8,
                seed,
                ..GenParams::default()
            },
        );
        legalize(&mut d, &LegalizeConfig::default());
        d
    }

    #[test]
    fn report_is_consistent() {
        let d = design(0.85, 5);
        let r = evaluate(&d, &EvalConfig::default());
        assert!(r.drwl > 0.0);
        assert!(r.drvias > 0.0);
        assert!((r.drvs - (r.drv_overflow + r.drv_pin_access + r.drv_rail)).abs() < 1e-9);
        assert!(r.route_seconds > 0.0);
    }

    #[test]
    fn scarcer_capacity_means_more_drvs() {
        let tight = evaluate(&design(0.6, 6), &EvalConfig::default());
        let loose = evaluate(&design(0.99, 6), &EvalConfig::default());
        assert!(
            tight.drvs > loose.drvs,
            "tight {} !> loose {}",
            tight.drvs,
            loose.drvs
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let d = design(0.85, 7);
        let a = evaluate(&d, &EvalConfig::default());
        let b = evaluate(&d, &EvalConfig::default());
        assert_eq!(a.drvs, b.drvs);
        assert_eq!(a.drwl, b.drwl);
        assert_eq!(a.drvias, b.drvias);
    }

    /// The DRWL includes both the maze router's real detours and the
    /// synthetic detour model for residual overflow, so it always at
    /// least matches the monotone lower bound (sum of net spans).
    #[test]
    fn drwl_includes_detour_costs() {
        let d = design(0.6, 9);
        let r = evaluate(&d, &EvalConfig::default());
        assert!(
            r.drwl >= d.hpwl() * 0.99,
            "drwl {} vs hpwl {}",
            r.drwl,
            d.hpwl()
        );
        // With zero-weight detour models the DRWL can only shrink.
        let bare = evaluate(
            &d,
            &EvalConfig {
                detour_pitches_per_overflow: 0.0,
                detour_vias_per_overflow: 0.0,
                ..EvalConfig::default()
            },
        );
        assert!(bare.drwl <= r.drwl + 1e-9);
        assert!(bare.drvias <= r.drvias + 1e-9);
    }

    #[test]
    fn refine_one_matches_base_grid() {
        let d = design(0.9, 8);
        let cfg = EvalConfig {
            refine: 1,
            ..EvalConfig::default()
        };
        let r = evaluate(&d, &cfg);
        assert!(r.drvs >= 0.0);
    }
}
