//! Track-level analysis: discretizing the layer-assigned demand into
//! integer tracks, the granularity at which a detailed router actually
//! fails.
//!
//! A G-cell with capacity 9.4 tracks and demand 9.6 shows a 0.2 overflow
//! in the continuous model — but on silicon that is one whole net without
//! a track, i.e. one short. [`track_analysis`] counts exactly these.

use rdp_db::{Design, GridSpec};
use rdp_route::{assign_layers, RouteResult};

/// Discrete track accounting per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackReport {
    /// Layer names, bottom-up.
    pub layers: Vec<String>,
    /// Continuous overflow per layer (track units).
    pub overflow_per_layer: Vec<f64>,
    /// Discrete shorts per layer: Σ max(round(demand) − floor(cap), 0).
    pub shorts_per_layer: Vec<f64>,
    /// Total discrete shorts.
    pub shorts: f64,
    /// Index of the worst (most-overflowed) layer.
    pub worst_layer: usize,
}

impl TrackReport {
    /// Name of the worst layer.
    pub fn worst_layer_name(&self) -> &str {
        &self.layers[self.worst_layer]
    }
}

/// Runs layer assignment on a routing result and counts discrete track
/// shorts per layer.
pub fn track_analysis(design: &Design, route: &RouteResult, grid: &GridSpec) -> TrackReport {
    let asg = assign_layers(design, &route.maps, grid);
    let n = asg.num_layers();
    let mut overflow_per_layer = vec![0.0; n];
    let mut shorts_per_layer = vec![0.0; n];
    for l in 0..n {
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                let dem = asg.demand[l][(ix, iy)];
                let cap = asg.capacity[l][(ix, iy)];
                overflow_per_layer[l] += (dem - cap).max(0.0);
                shorts_per_layer[l] += (dem.round() - cap.floor()).max(0.0);
            }
        }
    }
    let worst_layer = (0..n)
        .max_by(|&a, &b| overflow_per_layer[a].total_cmp(&overflow_per_layer[b]))
        .unwrap_or(0);
    TrackReport {
        layers: asg.names,
        shorts: shorts_per_layer.iter().sum(),
        overflow_per_layer,
        shorts_per_layer,
        worst_layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, Point, Rect, RoutingSpec};
    use rdp_route::GlobalRouter;

    /// Heavily overloaded stripe: discrete shorts must appear, on the
    /// horizontal layers.
    #[test]
    fn shorts_appear_on_overloaded_horizontal_layers() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 64.0, 64.0));
        let mut pairs = Vec::new();
        for i in 0..30 {
            let y = 30.0 + (i % 2) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(62.0, y));
            pairs.push((a, c));
        }
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        b.routing(RoutingSpec::uniform(4, 1.0, 16, 16));
        let d = b.build().unwrap();
        let grid = d.gcell_grid();
        let route = GlobalRouter::default().route(&d);
        let report = track_analysis(&d, &route, &grid);
        assert!(report.shorts > 0.0);
        // The worst layer routes horizontally (the stripe direction).
        let worst_dir_is_h = report.worst_layer % 2 == 0; // uniform stack: even = H
        assert!(worst_dir_is_h, "worst layer {}", report.worst_layer_name());
        assert_eq!(report.layers.len(), 4);
        assert!((report.shorts - report.shorts_per_layer.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// An uncongested design has zero shorts.
    #[test]
    fn no_shorts_when_under_capacity() {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 64.0, 64.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(2.0, 30.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(62.0, 30.0));
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 50.0, 16, 16));
        let d = b.build().unwrap();
        let grid = d.gcell_grid();
        let route = GlobalRouter::default().route(&d);
        let report = track_analysis(&d, &route, &grid);
        assert_eq!(report.shorts, 0.0);
        assert!(report.overflow_per_layer.iter().all(|&o| o == 0.0));
    }
}
