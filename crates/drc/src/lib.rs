//! # rdp-drc — post-placement routing evaluation and DRV proxy
//!
//! The paper measures placement quality by feeding each placer's result
//! through Cadence Innovus global + detailed routing and counting detailed
//! routing wirelength (DRWL), vias (#DRVias), and violations (#DRVs).
//! Innovus is unavailable here, so this crate implements the closest
//! synthetic equivalent: the legalized placement is routed on a grid
//! **finer** than the placement G-cells, and #DRVs is a proxy combining
//! the three phenomena detailed routers actually report violations for —
//!
//! * **routing overflow** — demand beyond capacity in a fine G-cell means
//!   shorts/spacing violations there,
//! * **pin-access overload** — more pins in a fine G-cell than its access
//!   budget means unreachable pins,
//! * **PG-rail blockage** — cells under M2 rails in congested cells
//!   cannot get their pins out on M1 (the phenomenon the paper's DPA
//!   technique targets).
//!
//! The proxy preserves the paper's *relative* claims (who wins, by what
//! rough factor); absolute counts are not comparable to Innovus numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod hotspots;
mod tracks;

pub use eval::{evaluate, EvalConfig, EvalReport};
pub use hotspots::{classify, hotspots, overflow_centroid, Hotspot};
pub use tracks::{track_analysis, TrackReport};
