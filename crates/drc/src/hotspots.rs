//! Hotspot diagnostics: where the DRVs come from.
//!
//! The scalar DRV proxy is enough for tables; debugging a placement needs
//! locations. This module ranks the evaluation grid's worst G-cells and
//! classifies each one (wire overflow vs via pressure vs pin density), the
//! kind of report a detailed router's DRC summary gives.

use rdp_db::{Design, GridSpec, Map2d, Point, Rect};
use rdp_route::RouteResult;

/// One congestion/DRV hotspot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// G-cell indices on the evaluation grid.
    pub gcell: (usize, usize),
    /// Physical region of the G-cell.
    pub region: Rect,
    /// Demand beyond capacity (track units; 0 when only pin-driven).
    pub overflow: f64,
    /// Demand / capacity utilization.
    pub utilization: f64,
    /// Pins inside the G-cell.
    pub pins: usize,
    /// Movable cells whose center lies in the G-cell.
    pub cells: usize,
}

/// Ranks the `top_n` worst G-cells of a routing result by overflow, then
/// utilization.
pub fn hotspots(
    design: &Design,
    route: &RouteResult,
    grid: &GridSpec,
    top_n: usize,
) -> Vec<Hotspot> {
    assert_eq!(route.congestion.nx(), grid.nx(), "grid mismatch");
    assert_eq!(route.congestion.ny(), grid.ny(), "grid mismatch");

    let mut pin_count = Map2d::<u32>::new(grid.nx(), grid.ny());
    for p in 0..design.num_pins() {
        let pos = design.pin_position(rdp_db::PinId::from_index(p));
        let (ix, iy) = grid.bin_of(pos);
        pin_count[(ix, iy)] += 1;
    }
    let mut cell_count = Map2d::<u32>::new(grid.nx(), grid.ny());
    for c in design.movable_cells() {
        let (ix, iy) = grid.bin_of(design.pos(c));
        cell_count[(ix, iy)] += 1;
    }

    let mut spots: Vec<Hotspot> = Vec::new();
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let demand = route.maps.demand_at(ix, iy);
            let capacity = route.maps.capacity_at(ix, iy);
            let overflow = (demand - capacity).max(0.0);
            if overflow <= 0.0 {
                continue;
            }
            spots.push(Hotspot {
                gcell: (ix, iy),
                region: grid.bin_rect(ix, iy),
                overflow,
                utilization: demand / capacity,
                pins: pin_count[(ix, iy)] as usize,
                cells: cell_count[(ix, iy)] as usize,
            });
        }
    }
    spots.sort_by(|a, b| {
        b.overflow
            .total_cmp(&a.overflow)
            .then(b.utilization.total_cmp(&a.utilization))
    });
    spots.truncate(top_n);
    spots
}

/// Classifies a hotspot by its dominant cause.
pub fn classify(h: &Hotspot) -> &'static str {
    if h.cells == 0 {
        // Congestion with no cells present: the paper's *global* routing
        // congestion — only net moving can fix it.
        "global (net-driven)"
    } else if h.pins > 4 * h.cells.max(1) {
        "pin-dense"
    } else {
        "local (cell-driven)"
    }
}

/// Center of gravity of the overflow distribution — where a placer should
/// focus next.
pub fn overflow_centroid(route: &RouteResult, grid: &GridSpec) -> Option<Point> {
    let mut acc = Point::default();
    let mut total = 0.0;
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let over = (route.maps.demand_at(ix, iy) - route.maps.capacity_at(ix, iy)).max(0.0);
            if over > 0.0 {
                let c = grid.bin_center(ix, iy);
                acc.x += c.x * over;
                acc.y += c.y * over;
                total += over;
            }
        }
    }
    if total > 0.0 {
        Some(Point::new(acc.x / total, acc.y / total))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdp_db::{Cell, DesignBuilder, RoutingSpec};
    use rdp_route::GlobalRouter;

    /// A congested stripe with no cells inside it (global congestion).
    fn stripe_design() -> Design {
        let mut b = DesignBuilder::new("h", Rect::new(0.0, 0.0, 64.0, 64.0));
        let mut pairs = Vec::new();
        for i in 0..40 {
            let y = 30.0 + (i % 4) as f64;
            let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 1.0), Point::new(2.0, y));
            let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 1.0), Point::new(62.0, y));
            pairs.push((a, c));
        }
        for (i, (a, c)) in pairs.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                vec![(*a, Point::default()), (*c, Point::default())],
            );
        }
        b.routing(RoutingSpec::uniform(4, 1.5, 16, 16));
        b.build().unwrap()
    }

    #[test]
    fn hotspots_found_in_the_stripe() {
        let d = stripe_design();
        let grid = d.gcell_grid();
        let route = GlobalRouter::default().route(&d);
        let spots = hotspots(&d, &route, &grid, 5);
        assert!(!spots.is_empty());
        // All top hotspots are in the stripe rows (y ∈ [28, 36)).
        for s in &spots {
            assert!(s.region.lo.y >= 24.0 && s.region.hi.y <= 40.0, "{s:?}");
            assert!(s.overflow > 0.0);
            assert!(s.utilization > 1.0);
        }
        // Ranked by overflow.
        for w in spots.windows(2) {
            assert!(w[0].overflow >= w[1].overflow);
        }
    }

    #[test]
    fn stripe_interior_classified_as_global() {
        let d = stripe_design();
        let grid = d.gcell_grid();
        let route = GlobalRouter::default().route(&d);
        let spots = hotspots(&d, &route, &grid, 16);
        // Interior of the stripe (x in the middle) has no cells.
        let interior = spots
            .iter()
            .find(|s| s.gcell.0 > 2 && s.gcell.0 < 13)
            .expect("interior hotspot exists");
        assert_eq!(classify(interior), "global (net-driven)");
    }

    #[test]
    fn centroid_is_inside_the_stripe() {
        let d = stripe_design();
        let grid = d.gcell_grid();
        let route = GlobalRouter::default().route(&d);
        let c = overflow_centroid(&route, &grid).expect("overflow exists");
        assert!(c.y > 26.0 && c.y < 40.0, "{c}");
    }

    #[test]
    fn no_overflow_means_no_hotspots() {
        let mut b = DesignBuilder::new("q", Rect::new(0.0, 0.0, 64.0, 64.0));
        let a = b.add_cell(Cell::std("a", 1.0, 1.0), Point::new(2.0, 2.0));
        let c = b.add_cell(Cell::std("b", 1.0, 1.0), Point::new(60.0, 60.0));
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())]);
        b.routing(RoutingSpec::uniform(4, 100.0, 16, 16));
        let d = b.build().unwrap();
        let grid = d.gcell_grid();
        let route = GlobalRouter::default().route(&d);
        assert!(hotspots(&d, &route, &grid, 10).is_empty());
        assert!(overflow_centroid(&route, &grid).is_none());
    }
}
