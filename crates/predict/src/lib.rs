//! Online-learned congestion prediction: the router fast-path.
//!
//! The global router dominates routability-loop wall-clock even after
//! incremental routing. Routed congestion, however, is largely a function
//! of quantities the placer already has in hand — RUDY, pin density, net
//! degree, capacity blockage, and the *previous* routed map — which makes
//! it learnable online, from the router invocations the flow performs
//! anyway (the cheap core of RoutePlacer / GOALPlace, arXiv 2406.02651 /
//! 2407.04579, in pure Rust).
//!
//! [`CongestionPredictor`] fits a per-G-cell linear model by
//! ridge-regularized recursive least squares: every real route contributes
//! one normal-equation update (`A ← λA + XᵀX`, `b ← λb + Xᵀy` with
//! forgetting factor `λ`), and an 8×8 Cholesky solve refreshes the
//! weights. Prediction is a clamped dot product per G-cell. Between real
//! routes the flow substitutes the predicted utilization map for MCI
//! inflation, DPA, and net-moving gradients; every real route doubles as a
//! drift measurement (predicted-vs-routed QoR deltas through the same
//! [`rel_delta`] arithmetic `rdp diff` gates on), and drift above the gate
//! suspends substitution until the model has re-earned trust.
//!
//! Determinism contract: feature extraction and the normal-equation
//! accumulation run on [`rdp_par::Pool::map_chunks`] with fixed chunk
//! sizes and ordered partial-sum merges, so results are bit-identical
//! across thread counts. Predictor state round-trips through `RDPSNAP`
//! ([`CongestionPredictor::write_into`] / `read_from`) so checkpoint
//! resume and `rdp serve` crash recovery reproduce runs bitwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rdp_db::{Design, Map2d};
use rdp_guard::{RdpError, SnapshotReader, SnapshotWriter};
use rdp_par::{chunk_len, Pool};
use rdp_report::rel_delta;
use rdp_route::CapacityMaps;

/// Number of per-G-cell features (the columns of `X`).
pub const NUM_FEATURES: usize = 8;

/// Predicted utilization is clamped to this ceiling, mirroring the RUDY
/// charge saturation (`CongestionField::RUDY_CHARGE_CEIL`): a linear model
/// extrapolating into a hotspot must not inject unbounded charge into the
/// congestion Poisson problem.
pub const UTIL_CEIL: f64 = 8.0;

/// Fixed chunk size for all per-G-cell parallel sweeps in this crate.
/// Chunking depends only on the element count, never the thread count —
/// the ordered merge of per-chunk partials is what keeps t1 == t4 bitwise.
const CHUNK: usize = 1024;

/// Relative-delta floors for the drift gate, per metric. Overflow is in
/// track units and legitimately reaches zero late in the flow; comparing
/// against a bare `1e-9` floor would turn sub-track noise into huge
/// relative drift, so each metric gets a floor at its own noise scale.
const OVERFLOW_FLOOR: f64 = 1.0;
const MAXC_FLOOR: f64 = 0.05;
const GCELLS_FLOOR: f64 = 4.0;

/// Configuration of the prediction fast-path.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictConfig {
    /// Number of successful fits (real routes observed) before any
    /// predicted map may substitute for the router.
    pub warmup_routes: usize,
    /// Drift gate: when the max absolute relative delta between predicted
    /// and routed QoR (overflow / max congestion / overflowed G-cells)
    /// exceeds this, substitution is suspended for `cooldown_routes`.
    pub drift_tol: f64,
    /// Forgetting factor `λ` applied to the accumulated normal equations
    /// before each new route's contribution; < 1 tracks the distribution
    /// shift as the placement evolves.
    pub forget: f64,
    /// Ridge regularizer added to the normal-equation diagonal at solve
    /// time; keeps the 8×8 system positive-definite even on degenerate
    /// designs (single cell, constant features).
    pub ridge: f64,
    /// Maximum predicted iterations in a row before a real route is
    /// forced (1 = strict alternation R,P,R,P,…).
    pub max_consecutive_predicted: usize,
    /// Number of real routes the gate keeps substitution suspended after
    /// a drift breach.
    pub cooldown_routes: usize,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            warmup_routes: 2,
            drift_tol: 0.5,
            forget: 0.7,
            ridge: 1e-3,
            max_consecutive_predicted: 1,
            cooldown_routes: 2,
        }
    }
}

/// Per-G-cell feature matrix extracted at one set of cell positions:
/// `n = nx·ny` rows of [`NUM_FEATURES`] columns, row-major in G-cell
/// row-major order.
#[derive(Debug, Clone)]
pub struct Features {
    data: Vec<f64>,
    nx: usize,
    ny: usize,
}

impl Features {
    /// Feature row of G-cell `i` (row-major index).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * NUM_FEATURES..(i + 1) * NUM_FEATURES]
    }

    /// Number of G-cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never: grids are non-empty).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grid width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height.
    pub fn ny(&self) -> usize {
        self.ny
    }
}

/// Extracts per-G-cell features at the design's current positions.
///
/// Static per-design quantities (capacity, its mean, the grid) are
/// captured at construction; per-call quantities (RUDY, pin binning,
/// previous routed utilization) are recomputed on each
/// [`extract`](FeatureExtractor::extract).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    grid: rdp_db::GridSpec,
    /// Total capacity `Cap = Cap_h + Cap_v` per G-cell.
    cap: Vec<f64>,
    /// `Cap / mean(Cap)` — encodes macro, obstruction and PG-rail
    /// blockage proximity (blocked cells sit well below 1).
    cap_ratio: Vec<f64>,
    mean_pins_per_cell: f64,
    mean_degree: f64,
}

impl FeatureExtractor {
    /// Builds the extractor from the design and its routing capacity maps.
    pub fn new(design: &Design, caps: &CapacityMaps) -> Self {
        let grid = design.gcell_grid();
        let n = grid.nx() * grid.ny();
        let mut cap = vec![0.0; n];
        for (i, c) in cap.iter_mut().enumerate() {
            *c = caps.h.as_slice()[i] + caps.v.as_slice()[i];
        }
        let mean_cap = (cap.iter().sum::<f64>() / n as f64).max(1e-9);
        let cap_ratio = cap.iter().map(|c| c / mean_cap).collect();
        let mean_pins_per_cell = (design.num_pins() as f64 / n as f64).max(1e-9);
        let mean_degree = if design.num_nets() == 0 {
            1.0
        } else {
            (design.num_pins() as f64 / design.num_nets() as f64).max(1.0)
        };
        FeatureExtractor {
            grid,
            cap,
            cap_ratio,
            mean_pins_per_cell,
            mean_degree,
        }
    }

    /// Total capacity slice (used to score predicted maps).
    pub fn capacity(&self) -> &[f64] {
        &self.cap
    }

    /// Extracts the feature matrix at the design's current positions.
    ///
    /// `prev_util` is the most recent *routed* utilization map (the
    /// strongest single predictor); `None` before the first route zeroes
    /// those columns.
    pub fn extract(&self, design: &Design, prev_util: Option<&Map2d<f64>>, pool: Pool) -> Features {
        let (nx, ny) = (self.grid.nx(), self.grid.ny());
        let n = nx * ny;

        // RUDY utilization: wirelength density → track demand over total
        // capacity, saturated like the RUDY congestion fallback.
        let rudy = rdp_route::rudy_map_with(design, &self.grid, pool.clone());
        let extent = 0.5 * (self.grid.bin_w() + self.grid.bin_h());
        let bin_area = self.grid.bin_area();
        let mut rudy_util = vec![0.0; n];
        for (i, r) in rudy_util.iter_mut().enumerate() {
            *r = (rudy.as_slice()[i] * bin_area / extent / self.cap[i].max(1e-9)).min(UTIL_CEIL);
        }

        // Pin binning: count and net-degree mass per G-cell. One serial
        // O(pins) scatter pass — cheap relative to RUDY, and trivially
        // deterministic.
        let mut pin_count = vec![0.0f64; n];
        let mut degree_sum = vec![0.0f64; n];
        for (pid, pin) in design.pins().iter().enumerate() {
            let p = design.pin_position(rdp_db::PinId(pid as u32));
            let (ix, iy) = self.grid.bin_of(p);
            let i = iy * nx + ix;
            pin_count[i] += 1.0;
            degree_sum[i] += design.nets()[pin.net.0 as usize].pins.len() as f64;
        }

        let prev = prev_util.map(Map2d::as_slice);
        debug_assert!(prev.map_or(true, |p| p.len() == n));

        // Assemble rows in parallel; chunked by fixed CHUNK with ordered
        // concatenation, so the matrix is bit-identical at any thread
        // count.
        let chunk = chunk_len(n, n.div_ceil(CHUNK).max(1), 1).max(1);
        let parts = pool.map_chunks(n, chunk, |_, range| {
            let mut out = Vec::with_capacity(range.len() * NUM_FEATURES);
            for i in range {
                let ix = i % nx;
                let iy = i / nx;
                let nbr = |v: &[f64]| -> f64 {
                    let mut acc = 0.0;
                    let mut cnt = 0.0;
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let jx = ix as i64 + dx;
                            let jy = iy as i64 + dy;
                            if jx >= 0 && jy >= 0 && (jx as usize) < nx && (jy as usize) < ny {
                                acc += v[jy as usize * nx + jx as usize];
                                cnt += 1.0;
                            }
                        }
                    }
                    acc / cnt
                };
                let pins = pin_count[i];
                out.push(1.0);
                out.push(rudy_util[i]);
                out.push(pins / self.mean_pins_per_cell);
                out.push(if pins > 0.0 {
                    degree_sum[i] / pins / self.mean_degree
                } else {
                    0.0
                });
                out.push(self.cap_ratio[i]);
                out.push(prev.map_or(0.0, |p| p[i]));
                out.push(prev.map_or(0.0, nbr));
                out.push(nbr(&rudy_util));
            }
            out
        });
        let mut data = Vec::with_capacity(n * NUM_FEATURES);
        for p in parts {
            data.extend_from_slice(&p);
        }
        Features { data, nx, ny }
    }
}

/// A predicted congestion state: the utilization map plus the scalar QoR
/// metrics the drift gate compares against routed reality.
#[derive(Debug, Clone)]
pub struct PredictedCongestion {
    /// Predicted per-G-cell utilization `ρ = Dmd/Cap` (clamped to
    /// `[0, UTIL_CEIL]`).
    pub util: Map2d<f64>,
    /// Σ `Cap·max(ρ−1, 0)` — track units, comparable to
    /// `RouteMaps::total_overflow`.
    pub total_overflow: f64,
    /// max `max(ρ−1, 0)` — comparable to the Eq. (3) congestion max.
    pub max_congestion: f64,
    /// Count of G-cells with `ρ > 1`.
    pub overflowed_gcells: usize,
}

/// Routed QoR scalars the drift gate compares a prediction against.
#[derive(Debug, Clone, Copy)]
pub struct RoutedQor {
    /// `RouteMaps::total_overflow()`.
    pub total_overflow: f64,
    /// Max of the Eq. (3) congestion map.
    pub max_congestion: f64,
    /// `RouteMaps::overflowed_gcells()`.
    pub overflowed_gcells: usize,
}

/// Predicted-vs-routed drift: the maximum absolute relative delta across
/// the three QoR metrics, measured with the same [`rel_delta`] arithmetic
/// `rdp diff` gates runs on (routed value is the baseline `a`).
pub fn qor_drift(predicted: &PredictedCongestion, routed: &RoutedQor) -> f64 {
    let d0 = rel_delta(
        routed.total_overflow,
        predicted.total_overflow,
        OVERFLOW_FLOOR,
    );
    let d1 = rel_delta(routed.max_congestion, predicted.max_congestion, MAXC_FLOOR);
    let d2 = rel_delta(
        routed.overflowed_gcells as f64,
        predicted.overflowed_gcells as f64,
        GCELLS_FLOOR,
    );
    d0.abs().max(d1.abs()).max(d2.abs())
}

/// RDPSNAP section version for serialized predictor state.
pub const PREDICTOR_SNAPSHOT_VERSION: u32 = 1;

/// The online ridge-RLS congestion model plus its substitution schedule
/// state (warmup, alternation streak, drift cooldown).
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionPredictor {
    cfg: PredictConfig,
    /// Accumulated `XᵀX` (row-major `NUM_FEATURES²`).
    xtx: Vec<f64>,
    /// Accumulated `Xᵀy`.
    xty: Vec<f64>,
    /// Current weights (valid once `fits > 0`).
    w: Vec<f64>,
    /// Successful fits so far (= real routes learned from).
    fits: u64,
    /// Total G-cell samples absorbed.
    samples: u64,
    /// Most recent routed utilization map (feature input).
    prev_util: Option<Map2d<f64>>,
    /// Consecutive predicted iterations since the last real route.
    streak: u64,
    /// Real routes remaining before substitution resumes after a breach.
    cooldown: u64,
}

impl CongestionPredictor {
    /// Creates an untrained predictor.
    pub fn new(cfg: PredictConfig) -> Self {
        CongestionPredictor {
            cfg,
            xtx: vec![0.0; NUM_FEATURES * NUM_FEATURES],
            xty: vec![0.0; NUM_FEATURES],
            w: vec![0.0; NUM_FEATURES],
            fits: 0,
            samples: 0,
            prev_util: None,
            streak: 0,
            cooldown: 0,
        }
    }

    /// The configuration this predictor runs under.
    pub fn cfg(&self) -> &PredictConfig {
        &self.cfg
    }

    /// Number of successful fits (real routes learned from).
    pub fn fits(&self) -> u64 {
        self.fits
    }

    /// Total per-G-cell samples absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Real routes remaining in the drift-gate cooldown (0 = gate open).
    pub fn cooldown(&self) -> u64 {
        self.cooldown
    }

    /// Most recent routed utilization map, if any.
    pub fn prev_util(&self) -> Option<&Map2d<f64>> {
        self.prev_util.as_ref()
    }

    /// Current model weights.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Whether the schedule allows substituting a predicted map for the
    /// next routing iteration: model warmed up, gate open, and the
    /// alternation streak not exhausted.
    pub fn want_predicted(&self) -> bool {
        self.fits >= self.cfg.warmup_routes as u64
            && self.cooldown == 0
            && self.streak < self.cfg.max_consecutive_predicted as u64
    }

    /// Records that a predicted map was substituted this iteration.
    pub fn note_predicted(&mut self) {
        self.streak += 1;
    }

    /// Records that a real route ran this iteration (resets the
    /// alternation streak, ticks the drift cooldown down).
    pub fn note_real(&mut self) {
        self.streak = 0;
        self.cooldown = self.cooldown.saturating_sub(1);
    }

    /// Trips the drift gate: suspends substitution for
    /// `cooldown_routes` real routes.
    pub fn trip_gate(&mut self) {
        self.cooldown = self.cfg.cooldown_routes as u64;
    }

    /// Learns from one real route: decays the normal equations by the
    /// forgetting factor, accumulates this route's `XᵀX`/`Xᵀy` with a
    /// fixed-chunk ordered reduction, re-solves the ridge system, and
    /// stores `util` as the next extraction's `prev_util` feature.
    ///
    /// `util` must be the routed utilization (`RouteMaps::charge_density`)
    /// on the same grid as `features`.
    pub fn observe(&mut self, features: &Features, util: &Map2d<f64>, pool: Pool) {
        let n = features.len();
        assert_eq!(n, util.len(), "feature/target grid mismatch");
        let y = util.as_slice();

        const D: usize = NUM_FEATURES;
        let chunk = chunk_len(n, n.div_ceil(CHUNK).max(1), 1).max(1);
        let parts = pool.map_chunks(n, chunk, |_, range| {
            let mut a = [0.0f64; D * D];
            let mut b = [0.0f64; D];
            for i in range {
                let x = features.row(i);
                let yi = y[i];
                for r in 0..D {
                    let xr = x[r];
                    for c in 0..D {
                        a[r * D + c] += xr * x[c];
                    }
                    b[r] += xr * yi;
                }
            }
            (a, b)
        });

        // λ-decay, then merge the per-chunk partials in chunk order: the
        // summation sequence depends only on n and CHUNK.
        for v in self.xtx.iter_mut().chain(self.xty.iter_mut()) {
            *v *= self.cfg.forget;
        }
        for (a, b) in &parts {
            for (acc, v) in self.xtx.iter_mut().zip(a.iter()) {
                *acc += v;
            }
            for (acc, v) in self.xty.iter_mut().zip(b.iter()) {
                *acc += v;
            }
        }
        self.samples += n as u64;

        if let Some(w) = solve_ridge(&self.xtx, &self.xty, self.cfg.ridge) {
            self.w = w;
            self.fits += 1;
        }
        self.prev_util = Some(util.clone());
    }

    /// Predicts the utilization map at the feature matrix's positions.
    /// Returns `None` until the first successful fit.
    ///
    /// `cap` is the total-capacity slice ([`FeatureExtractor::capacity`])
    /// used to express overflow in the router's track units.
    pub fn predict(
        &self,
        features: &Features,
        cap: &[f64],
        pool: Pool,
    ) -> Option<PredictedCongestion> {
        if self.fits == 0 {
            return None;
        }
        let n = features.len();
        assert_eq!(n, cap.len(), "feature/capacity grid mismatch");
        let chunk = chunk_len(n, n.div_ceil(CHUNK).max(1), 1).max(1);
        let parts = pool.map_chunks(n, chunk, |_, range| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                let x = features.row(i);
                let mut v = 0.0;
                for (wj, xj) in self.w.iter().zip(x.iter()) {
                    v += wj * xj;
                }
                out.push(v.clamp(0.0, UTIL_CEIL));
            }
            out
        });
        let mut util = Vec::with_capacity(n);
        for p in parts {
            util.extend_from_slice(&p);
        }

        let mut total_overflow = 0.0;
        let mut max_congestion = 0.0f64;
        let mut overflowed = 0usize;
        for (i, &u) in util.iter().enumerate() {
            let over = (u - 1.0).max(0.0);
            total_overflow += cap[i] * over;
            max_congestion = max_congestion.max(over);
            overflowed += usize::from(u > 1.0);
        }
        Some(PredictedCongestion {
            util: Map2d::from_vec(features.nx(), features.ny(), util),
            total_overflow,
            max_congestion,
            overflowed_gcells: overflowed,
        })
    }

    /// Writes the full predictor state — configuration included, so a
    /// checkpoint is self-contained — into an open RDPSNAP writer
    /// (embedded in the flow checkpoint).
    pub fn write_into(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cfg.warmup_routes as u64);
        w.put_f64(self.cfg.drift_tol);
        w.put_f64(self.cfg.forget);
        w.put_f64(self.cfg.ridge);
        w.put_u64(self.cfg.max_consecutive_predicted as u64);
        w.put_u64(self.cfg.cooldown_routes as u64);
        w.put_u64(NUM_FEATURES as u64);
        w.put_f64s(&self.xtx);
        w.put_f64s(&self.xty);
        w.put_f64s(&self.w);
        w.put_u64(self.fits);
        w.put_u64(self.samples);
        w.put_u64(self.streak);
        w.put_u64(self.cooldown);
        match &self.prev_util {
            Some(m) => {
                w.put_u64(1);
                w.put_u64(m.nx() as u64);
                w.put_u64(m.ny() as u64);
                w.put_f64s(m.as_slice());
            }
            None => w.put_u64(0),
        }
    }

    /// Reads predictor state written by
    /// [`write_into`](CongestionPredictor::write_into).
    pub fn read_from(r: &mut SnapshotReader<'_>) -> Result<Self, RdpError> {
        let cfg = PredictConfig {
            warmup_routes: r.take_u64()? as usize,
            drift_tol: r.take_f64()?,
            forget: r.take_f64()?,
            ridge: r.take_f64()?,
            max_consecutive_predicted: r.take_u64()? as usize,
            cooldown_routes: r.take_u64()? as usize,
        };
        let d = r.take_u64()? as usize;
        if d != NUM_FEATURES {
            return Err(RdpError::Checkpoint {
                detail: format!("predictor feature count {d} != {NUM_FEATURES}"),
            });
        }
        let xtx = r.take_f64s()?;
        let xty = r.take_f64s()?;
        let w = r.take_f64s()?;
        if xtx.len() != d * d || xty.len() != d || w.len() != d {
            return Err(RdpError::Checkpoint {
                detail: "predictor matrix shape mismatch".into(),
            });
        }
        let fits = r.take_u64()?;
        let samples = r.take_u64()?;
        let streak = r.take_u64()?;
        let cooldown = r.take_u64()?;
        let prev_util = if r.take_u64()? != 0 {
            let nx = r.take_u64()? as usize;
            let ny = r.take_u64()? as usize;
            let data = r.take_f64s()?;
            if nx == 0 || ny == 0 || data.len() != nx * ny {
                return Err(RdpError::Checkpoint {
                    detail: "predictor prev_util shape mismatch".into(),
                });
            }
            Some(Map2d::from_vec(nx, ny, data))
        } else {
            None
        };
        Ok(CongestionPredictor {
            cfg,
            xtx,
            xty,
            w,
            fits,
            samples,
            prev_util,
            streak,
            cooldown,
        })
    }

    /// Standalone RDPSNAP serialization (tests, tooling).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(PREDICTOR_SNAPSHOT_VERSION);
        self.write_into(&mut w);
        w.finish()
    }

    /// Inverse of [`to_bytes`](CongestionPredictor::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RdpError> {
        let mut r = SnapshotReader::new(bytes, PREDICTOR_SNAPSHOT_VERSION)?;
        let p = Self::read_from(&mut r)?;
        r.finish()?;
        Ok(p)
    }
}

/// Solves `(A + ridge·I)·w = b` by Cholesky; `None` when the regularized
/// system is still not positive-definite (untrainable degenerate input).
fn solve_ridge(a: &[f64], b: &[f64], ridge: f64) -> Option<Vec<f64>> {
    const D: usize = NUM_FEATURES;
    let mut l = [0.0f64; D * D];
    for r in 0..D {
        for c in 0..=r {
            let mut s = a[r * D + c] + if r == c { ridge } else { 0.0 };
            for k in 0..c {
                s -= l[r * D + k] * l[c * D + k];
            }
            if r == c {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l[r * D + r] = s.sqrt();
            } else {
                l[r * D + c] = s / l[c * D + c];
            }
        }
    }
    // Forward then back substitution.
    let mut z = [0.0f64; D];
    for r in 0..D {
        let mut s = b[r];
        for k in 0..r {
            s -= l[r * D + k] * z[k];
        }
        z[r] = s / l[r * D + r];
    }
    let mut w = vec![0.0f64; D];
    for r in (0..D).rev() {
        let mut s = z[r];
        for k in (r + 1)..D {
            s -= l[k * D + r] * w[k];
        }
        w[r] = s / l[r * D + r];
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        rdp_gen::generate_named("fft_a").expect("generator")
    }

    fn setup() -> (Design, FeatureExtractor) {
        let d = design();
        let caps = CapacityMaps::build(&d, &rdp_route::CapacityOptions::default());
        let fx = FeatureExtractor::new(&d, &caps);
        (d, fx)
    }

    #[test]
    fn extraction_is_thread_invariant() {
        let (d, fx) = setup();
        let a = fx.extract(&d, None, Pool::serial());
        let b = fx.extract(&d, None, Pool::new(4));
        assert_eq!(a.data.len(), b.data.len());
        for (x, y) in a.data.iter().zip(&b.data) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn recovers_a_linear_map() {
        // Synthesize a target that IS linear in the features; after a few
        // observations the model must reproduce it almost exactly.
        let (d, fx) = setup();
        let feats = fx.extract(&d, None, Pool::serial());
        let truth = [0.3, 0.5, 0.1, 0.0, -0.2, 0.0, 0.0, 0.25];
        let n = feats.len();
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let x = feats.row(i);
            y.push(x.iter().zip(truth.iter()).map(|(a, b)| a * b).sum::<f64>());
        }
        let util = Map2d::from_vec(feats.nx(), feats.ny(), y.clone());
        let mut p = CongestionPredictor::new(PredictConfig {
            ridge: 1e-9,
            ..PredictConfig::default()
        });
        p.observe(&feats, &util, Pool::serial());
        assert_eq!(p.fits(), 1);
        let pred = p
            .predict(&feats, fx.capacity(), Pool::serial())
            .expect("fit model predicts");
        for (i, want) in y.iter().enumerate() {
            let got = pred.util.as_slice()[i];
            let want = want.clamp(0.0, UTIL_CEIL);
            assert!(
                (got - want).abs() < 1e-6,
                "cell {i}: predicted {got}, want {want}"
            );
        }
    }

    #[test]
    fn observe_and_predict_are_thread_invariant() {
        let (d, fx) = setup();
        let feats1 = fx.extract(&d, None, Pool::serial());
        let feats4 = fx.extract(&d, None, Pool::new(4));
        let n = feats1.len();
        let util = Map2d::from_vec(
            feats1.nx(),
            feats1.ny(),
            (0..n)
                .map(|i| 0.4 + 0.9 * ((i * 7 % 13) as f64 / 13.0))
                .collect(),
        );
        let mut p1 = CongestionPredictor::new(PredictConfig::default());
        let mut p4 = CongestionPredictor::new(PredictConfig::default());
        p1.observe(&feats1, &util, Pool::serial());
        p4.observe(&feats4, &util, Pool::new(4));
        for (a, b) in p1.weights().iter().zip(p4.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let q1 = p1.predict(&feats1, fx.capacity(), Pool::serial()).unwrap();
        let q4 = p4.predict(&feats4, fx.capacity(), Pool::new(4)).unwrap();
        assert_eq!(q1.total_overflow.to_bits(), q4.total_overflow.to_bits());
        assert_eq!(q1.max_congestion.to_bits(), q4.max_congestion.to_bits());
        assert_eq!(q1.overflowed_gcells, q4.overflowed_gcells);
        for (a, b) in q1.util.as_slice().iter().zip(q4.util.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let (d, fx) = setup();
        let feats = fx.extract(&d, None, Pool::serial());
        let n = feats.len();
        let util = Map2d::from_vec(
            feats.nx(),
            feats.ny(),
            (0..n).map(|i| (i as f64 * 0.37).sin().abs()).collect(),
        );
        let mut p = CongestionPredictor::new(PredictConfig::default());
        p.observe(&feats, &util, Pool::serial());
        p.note_predicted();
        p.trip_gate();
        let bytes = p.to_bytes();
        let q = CongestionPredictor::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(p, q);
        assert_eq!(bytes, q.to_bytes());
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let p = CongestionPredictor::new(PredictConfig::default());
        let mut bytes = p.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(CongestionPredictor::from_bytes(&bytes).is_err());
    }

    #[test]
    fn schedule_alternates_and_gates() {
        let mut p = CongestionPredictor::new(PredictConfig {
            warmup_routes: 1,
            max_consecutive_predicted: 1,
            cooldown_routes: 2,
            ..PredictConfig::default()
        });
        assert!(!p.want_predicted(), "untrained model must not substitute");
        p.fits = 1; // pretend one fit happened
        assert!(p.want_predicted());
        p.note_predicted();
        assert!(!p.want_predicted(), "streak exhausted after 1 predicted");
        p.note_real();
        assert!(p.want_predicted(), "real route resets the streak");
        p.trip_gate();
        assert!(!p.want_predicted(), "breach closes the gate");
        p.note_real();
        assert!(!p.want_predicted(), "cooldown spans 2 real routes");
        p.note_real();
        assert!(p.want_predicted(), "gate reopens after cooldown");
    }

    #[test]
    fn drift_measures_relative_divergence() {
        let pred = PredictedCongestion {
            util: Map2d::new(1, 1),
            total_overflow: 300.0,
            max_congestion: 1.0,
            overflowed_gcells: 50,
        };
        let routed = RoutedQor {
            total_overflow: 100.0,
            max_congestion: 1.0,
            overflowed_gcells: 50,
        };
        let drift = qor_drift(&pred, &routed);
        assert!((drift - 2.0).abs() < 1e-12, "3x overflow = 200% drift");
        let same = RoutedQor {
            total_overflow: 300.0,
            max_congestion: 1.0,
            overflowed_gcells: 50,
        };
        assert_eq!(qor_drift(&pred, &same), 0.0);
    }

    #[test]
    fn degenerate_features_still_solve() {
        // All-identical rows: rank-1 XᵀX. The ridge must keep the solve
        // alive (this is the single_cell / all_fixed scenario shape).
        let feats = Features {
            data: vec![1.0; 4 * NUM_FEATURES],
            nx: 2,
            ny: 2,
        };
        let util = Map2d::filled(2, 2, 0.5);
        let mut p = CongestionPredictor::new(PredictConfig::default());
        p.observe(&feats, &util, Pool::serial());
        assert_eq!(p.fits(), 1, "ridge-regularized solve must succeed");
        let pred = p
            .predict(&feats, &[1.0; 4], Pool::serial())
            .expect("prediction available");
        assert!(pred.util.as_slice().iter().all(|v| v.is_finite()));
    }
}
