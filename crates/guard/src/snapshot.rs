//! Versioned binary snapshot codec for checkpoint/restore.
//!
//! Layout: an 8-byte magic, a `u32` format version, the payload, and a
//! trailing FNV-1a 64-bit checksum over everything before it. All scalars
//! are little-endian; `f64`s round-trip bit-exactly via `to_le_bytes`, so
//! a resumed run reproduces the uninterrupted run bitwise.
//!
//! The codec is deliberately schema-free: the *owner* of a snapshot (e.g.
//! `rdp-core`'s `FlowCheckpoint`) defines field order and bumps its own
//! version when that order changes. The reader validates magic, version
//! range, checksum, and exact consumption, turning any mismatch into a
//! typed [`RdpError::Checkpoint`].

use crate::error::RdpError;
use rdp_db::Point;

/// Magic prefix identifying an rdp snapshot stream.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RDPSNAP\0";

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only snapshot encoder.
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot with the owner's format `version`.
    pub fn new(version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        SnapshotWriter { buf }
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed scalar vector.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Length-prefixed point vector (x, y pairs).
    pub fn put_points(&mut self, ps: &[Point]) {
        self.put_u64(ps.len() as u64);
        for p in ps {
            self.put_f64(p.x);
            self.put_f64(p.y);
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Seals the snapshot: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Validating snapshot decoder.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot, verifying magic and checksum. `max_version` is
    /// the newest format the caller understands.
    pub fn new(bytes: &'a [u8], max_version: u32) -> Result<Self, RdpError> {
        let min_len = SNAPSHOT_MAGIC.len() + 4 + 8;
        if bytes.len() < min_len {
            return Err(RdpError::checkpoint(format!(
                "snapshot too short: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(RdpError::checkpoint("bad snapshot magic"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[bytes.len() - 8..]);
        if fnv1a64(body) != u64::from_le_bytes(sum) {
            return Err(RdpError::checkpoint("snapshot checksum mismatch"));
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[8..12]);
        let version = u32::from_le_bytes(ver);
        if version == 0 || version > max_version {
            return Err(RdpError::checkpoint(format!(
                "unsupported snapshot version {version} (newest understood: {max_version})"
            )));
        }
        Ok(SnapshotReader {
            data: body,
            pos: 12,
            version,
        })
    }

    /// Format version recorded by the writer.
    pub fn version(&self) -> u32 {
        self.version
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RdpError> {
        if self.pos + n > self.data.len() {
            return Err(RdpError::checkpoint(format!(
                "snapshot truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u64(&mut self) -> Result<u64, RdpError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    pub fn take_f64(&mut self) -> Result<f64, RdpError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(b))
    }

    pub fn take_f64s(&mut self) -> Result<Vec<f64>, RdpError> {
        let n = self.take_u64()? as usize;
        self.bound_len(n, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    pub fn take_points(&mut self) -> Result<Vec<Point>, RdpError> {
        let n = self.take_u64()? as usize;
        self.bound_len(n, 16)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let x = self.take_f64()?;
            let y = self.take_f64()?;
            out.push(Point::new(x, y));
        }
        Ok(out)
    }

    pub fn take_str(&mut self) -> Result<String, RdpError> {
        let n = self.take_u64()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RdpError::checkpoint("snapshot string is not UTF-8"))
    }

    /// Rejects absurd length prefixes before attempting the allocation.
    fn bound_len(&self, n: usize, elem_size: usize) -> Result<(), RdpError> {
        let remaining = self.data.len() - self.pos;
        if n.checked_mul(elem_size).map_or(true, |b| b > remaining) {
            return Err(RdpError::checkpoint(format!(
                "snapshot length prefix {n} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(())
    }

    /// Confirms the payload was consumed exactly.
    pub fn finish(self) -> Result<(), RdpError> {
        if self.pos != self.data.len() {
            return Err(RdpError::checkpoint(format!(
                "snapshot has {} trailing byte(s)",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_exact() {
        let pts = vec![Point::new(1.5, -2.25), Point::new(f64::MIN_POSITIVE, 1e300)];
        let vs = vec![0.1 + 0.2, -0.0, 3.5];
        let mut w = SnapshotWriter::new(3);
        w.put_u64(42);
        w.put_f64(std::f64::consts::PI);
        w.put_f64s(&vs);
        w.put_points(&pts);
        w.put_str("routability");
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes, 3).unwrap();
        assert_eq!(r.version(), 3);
        assert_eq!(r.take_u64().unwrap(), 42);
        assert_eq!(
            r.take_f64().unwrap().to_bits(),
            std::f64::consts::PI.to_bits()
        );
        let vs2 = r.take_f64s().unwrap();
        assert_eq!(vs.len(), vs2.len());
        for (a, b) in vs.iter().zip(&vs2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let pts2 = r.take_points().unwrap();
        for (a, b) in pts.iter().zip(&pts2) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
        assert_eq!(r.take_str().unwrap(), "routability");
        r.finish().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = SnapshotWriter::new(1);
        w.put_f64s(&[1.0, 2.0, 3.0]);
        let bytes = w.finish();

        // Flip one payload byte: checksum must catch it.
        for flip in [13usize, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            assert!(SnapshotReader::new(&bad, 1).is_err(), "flip at {flip}");
        }
        // Truncation.
        assert!(SnapshotReader::new(&bytes[..bytes.len() - 1], 1).is_err());
        assert!(SnapshotReader::new(&bytes[..4], 1).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SnapshotReader::new(&bad, 1).is_err());
    }

    #[test]
    fn version_gate() {
        let w = SnapshotWriter::new(7);
        let bytes = w.finish();
        assert!(SnapshotReader::new(&bytes, 6).is_err());
        assert_eq!(SnapshotReader::new(&bytes, 7).unwrap().version(), 7);
        assert_eq!(SnapshotReader::new(&bytes, 9).unwrap().version(), 7);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = SnapshotWriter::new(1);
        w.put_u64(u64::MAX); // claims u64::MAX points follow
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes, 1).unwrap();
        assert!(r.take_points().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = SnapshotWriter::new(1);
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes, 1).unwrap();
        let _ = r.take_u64().unwrap();
        assert!(r.finish().is_err());
    }
}
