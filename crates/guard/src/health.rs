//! Numerical-health monitor: cheap NaN/Inf/magnitude sentinels and
//! divergence detection for the Nesterov outer loops.
//!
//! The sentinels are single-pass scans built on one comparison per value:
//! `!(v.abs() <= ceiling)` is true exactly when `v` is NaN, ±Inf, or has
//! blown past the magnitude ceiling, so a healthy scan costs one abs and
//! one predictable branch per element (< 2% of a GP step on the 20k-cell
//! kernel benches — see `BENCH_guard.json`).

use crate::error::{RdpError, Stage};
use rdp_db::{Map2d, Point};

/// Policy knobs for the health monitor and divergence rollback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Master switch. When false every check is a no-op, for apples-to-
    /// apples benchmarking of the sentinel overhead.
    pub enabled: bool,
    /// Magnitude ceiling for monitored quantities (gradients, fields,
    /// positions). Values with |v| above this trip the sentinel even when
    /// finite — by then the step is numerically meaningless anyway.
    pub max_magnitude: f64,
    /// Overflow blow-up factor: a step whose density overflow exceeds
    /// `divergence_factor * (last_good + 1)` is treated as divergence.
    /// Deliberately loose so healthy runs are never touched.
    pub divergence_factor: f64,
    /// How many rollback + re-tune attempts before giving up with
    /// [`RdpError::Diverged`].
    pub max_rollbacks: usize,
    /// Multiplier applied to the γ boost on each rollback (smoothing the
    /// WA model to damp the gradient that diverged).
    pub gamma_boost_on_rollback: f64,
    /// Multiplier applied to λ (density weight) on each rollback.
    pub lambda_damp_on_rollback: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            enabled: true,
            max_magnitude: 1e18,
            divergence_factor: 50.0,
            max_rollbacks: 3,
            gamma_boost_on_rollback: 1.5,
            lambda_damp_on_rollback: 0.5,
        }
    }
}

impl HealthPolicy {
    /// A policy with every check disabled.
    pub fn disabled() -> Self {
        HealthPolicy {
            enabled: false,
            ..HealthPolicy::default()
        }
    }

    /// Scans a scalar buffer; returns the first unhealthy entry.
    pub fn check_slice(
        &self,
        stage: Stage,
        quantity: &str,
        iteration: Option<usize>,
        values: &[f64],
    ) -> Result<(), RdpError> {
        if !self.enabled {
            return Ok(());
        }
        let ceiling = self.max_magnitude;
        for (i, &v) in values.iter().enumerate() {
            if !(v.abs() <= ceiling) {
                return Err(RdpError::non_finite(stage, quantity, iteration, i, v));
            }
        }
        Ok(())
    }

    /// Scans a point buffer (both coordinates).
    pub fn check_points(
        &self,
        stage: Stage,
        quantity: &str,
        iteration: Option<usize>,
        values: &[Point],
    ) -> Result<(), RdpError> {
        if !self.enabled {
            return Ok(());
        }
        let ceiling = self.max_magnitude;
        for (i, p) in values.iter().enumerate() {
            if !(p.x.abs() <= ceiling) {
                return Err(RdpError::non_finite(stage, quantity, iteration, i, p.x));
            }
            if !(p.y.abs() <= ceiling) {
                return Err(RdpError::non_finite(stage, quantity, iteration, i, p.y));
            }
        }
        Ok(())
    }

    /// Scans a 2-D field.
    pub fn check_map(
        &self,
        stage: Stage,
        quantity: &str,
        iteration: Option<usize>,
        map: &Map2d<f64>,
    ) -> Result<(), RdpError> {
        self.check_slice(stage, quantity, iteration, map.as_slice())
    }

    /// Scans a single scalar (overflow, penalty, λ, …).
    pub fn check_scalar(
        &self,
        stage: Stage,
        quantity: &str,
        iteration: Option<usize>,
        value: f64,
    ) -> Result<(), RdpError> {
        if self.enabled && !(value.abs() <= self.max_magnitude) {
            return Err(RdpError::non_finite(stage, quantity, iteration, 0, value));
        }
        Ok(())
    }

    /// Divergence test for the outer loop: did `value` blow up relative to
    /// the last known-good `baseline`? Non-finite values always count.
    pub fn is_blowup(&self, baseline: f64, value: f64) -> bool {
        if !self.enabled {
            return false;
        }
        if !value.is_finite() {
            return true;
        }
        value > self.divergence_factor * (baseline.abs() + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_catches_nan_inf_and_magnitude() {
        let h = HealthPolicy::default();
        assert!(h
            .check_slice(Stage::Poisson, "psi", None, &[0.0, 1.0, -3.5])
            .is_ok());
        let e = h
            .check_slice(Stage::Poisson, "psi", Some(2), &[0.0, f64::NAN])
            .unwrap_err();
        match e {
            RdpError::NonFinite { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(h
            .check_slice(Stage::Poisson, "psi", None, &[f64::INFINITY])
            .is_err());
        assert!(h.check_slice(Stage::Poisson, "psi", None, &[1e19]).is_err());
        assert!(h
            .check_slice(Stage::Poisson, "psi", None, &[-1e19])
            .is_err());
    }

    #[test]
    fn points_and_scalars_checked_componentwise() {
        let h = HealthPolicy::default();
        let pts = [Point::new(1.0, 2.0), Point::new(3.0, f64::NAN)];
        let e = h
            .check_points(Stage::WirelengthGp, "grad", Some(1), &pts)
            .unwrap_err();
        match e {
            RdpError::NonFinite { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(h
            .check_scalar(Stage::Routability, "overflow", None, 0.5)
            .is_ok());
        assert!(h
            .check_scalar(Stage::Routability, "overflow", None, f64::NAN)
            .is_err());
    }

    #[test]
    fn disabled_policy_is_a_noop() {
        let h = HealthPolicy::disabled();
        assert!(h
            .check_slice(Stage::Poisson, "psi", None, &[f64::NAN])
            .is_ok());
        assert!(!h.is_blowup(1.0, f64::INFINITY));
    }

    #[test]
    fn blowup_is_loose() {
        let h = HealthPolicy::default();
        // Ordinary overflow wobble must never trip.
        assert!(!h.is_blowup(0.8, 1.0));
        assert!(!h.is_blowup(0.1, 5.0));
        // True explosions do.
        assert!(h.is_blowup(0.5, 100.0));
        assert!(h.is_blowup(0.5, f64::NAN));
    }
}
