//! Workspace-wide structured error type.
//!
//! Every fallible stage of the flow — parsing, global placement, the
//! Poisson solve, routing, net-moving, inflation, checkpointing — reports
//! failures through [`RdpError`] instead of panicking. Each variant
//! carries enough context (stage, iteration, offending quantity) to make
//! the failure reproducible and actionable.

use std::fmt;

/// Pipeline stage in which an error was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Reading an input file into the design database.
    Parse,
    /// Design-level validation (netlist structure, geometry).
    Design,
    /// Wirelength-driven global placement (phase 1).
    WirelengthGp,
    /// The outer routability loop (phase 2).
    Routability,
    /// Global routing / congestion-map construction.
    Routing,
    /// Spectral Poisson solve.
    Poisson,
    /// Differentiable net-moving (DC) gradients.
    NetMoving,
    /// Momentum cell inflation (MCI).
    Inflation,
    /// Dynamic pin-accessibility (DPA) density.
    Dpa,
    /// Checkpoint encode/decode or resume validation.
    Checkpoint,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Parse => "parse",
            Stage::Design => "design",
            Stage::WirelengthGp => "wirelength-gp",
            Stage::Routability => "routability",
            Stage::Routing => "routing",
            Stage::Poisson => "poisson",
            Stage::NetMoving => "net-moving",
            Stage::Inflation => "inflation",
            Stage::Dpa => "dpa",
            Stage::Checkpoint => "checkpoint",
        };
        f.write_str(name)
    }
}

/// Structured error for the whole placement/routing pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RdpError {
    /// An input file could not be parsed. `line` is 1-based when known.
    Parse {
        context: String,
        line: Option<usize>,
        message: String,
    },
    /// The design itself is unusable (degenerate netlist, bad geometry).
    Design { message: String },
    /// A monitored quantity became NaN/Inf or exceeded the magnitude
    /// ceiling. `value` is the first offending value, `index` its position
    /// in the scanned buffer.
    NonFinite {
        stage: Stage,
        quantity: String,
        iteration: Option<usize>,
        index: usize,
        value: f64,
    },
    /// The optimizer kept diverging after exhausting the rollback budget.
    Diverged {
        stage: Stage,
        iteration: usize,
        rollbacks: usize,
        detail: String,
    },
    /// A checkpoint could not be encoded, decoded, or applied.
    Checkpoint { detail: String },
    /// A configuration value is unusable for the given design.
    Config { detail: String },
    /// A wall-clock deadline expired. Enforced at checkpoint boundaries,
    /// so the last persisted checkpoint is at most one iteration stale.
    Deadline {
        detail: String,
        /// Wall-clock milliseconds consumed when the deadline tripped.
        elapsed_ms: u64,
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// Work was cancelled before completing (client request or drain).
    Cancelled { detail: String },
    /// A wire-protocol violation: malformed, oversized, or truncated
    /// frames, or an I/O deadline exceeded on a connection.
    Protocol { detail: String },
    /// A bounded queue or resource rejected the request; retry after the
    /// indicated backoff.
    Busy {
        detail: String,
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// An internal invariant failed (e.g. a panic caught at a job
    /// boundary). Never retried automatically.
    Internal { detail: String },
}

impl RdpError {
    /// Convenience constructor for non-finite sentinel trips.
    pub fn non_finite(
        stage: Stage,
        quantity: impl Into<String>,
        iteration: Option<usize>,
        index: usize,
        value: f64,
    ) -> Self {
        RdpError::NonFinite {
            stage,
            quantity: quantity.into(),
            iteration,
            index,
            value,
        }
    }

    /// Convenience constructor for checkpoint failures.
    pub fn checkpoint(detail: impl Into<String>) -> Self {
        RdpError::Checkpoint {
            detail: detail.into(),
        }
    }

    /// The stage the error belongs to, when one is attached.
    pub fn stage(&self) -> Option<Stage> {
        match self {
            RdpError::Parse { .. } => Some(Stage::Parse),
            RdpError::Design { .. } => Some(Stage::Design),
            RdpError::NonFinite { stage, .. } | RdpError::Diverged { stage, .. } => Some(*stage),
            RdpError::Checkpoint { .. } => Some(Stage::Checkpoint),
            RdpError::Config { .. }
            | RdpError::Deadline { .. }
            | RdpError::Cancelled { .. }
            | RdpError::Protocol { .. }
            | RdpError::Busy { .. }
            | RdpError::Internal { .. } => None,
        }
    }

    /// Convenience constructor for protocol violations.
    pub fn protocol(detail: impl Into<String>) -> Self {
        RdpError::Protocol {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for internal invariant failures.
    pub fn internal(detail: impl Into<String>) -> Self {
        RdpError::Internal {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdpError::Parse {
                context,
                line,
                message,
            } => match line {
                Some(n) => write!(f, "parse error in {context} at line {n}: {message}"),
                None => write!(f, "parse error in {context}: {message}"),
            },
            RdpError::Design { message } => write!(f, "design error: {message}"),
            RdpError::NonFinite {
                stage,
                quantity,
                iteration,
                index,
                value,
            } => {
                write!(f, "[{stage}] non-finite or oversized {quantity}")?;
                if let Some(it) = iteration {
                    write!(f, " at iteration {it}")?;
                }
                write!(f, " (index {index}, value {value})")
            }
            RdpError::Diverged {
                stage,
                iteration,
                rollbacks,
                detail,
            } => write!(
                f,
                "[{stage}] diverged at iteration {iteration} after {rollbacks} rollback(s): {detail}"
            ),
            RdpError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
            RdpError::Config { detail } => write!(f, "config error: {detail}"),
            RdpError::Deadline {
                detail,
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded after {elapsed_ms} ms (budget {budget_ms} ms): {detail}"
            ),
            RdpError::Cancelled { detail } => write!(f, "cancelled: {detail}"),
            RdpError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            RdpError::Busy {
                detail,
                retry_after_ms,
            } => write!(f, "busy: {detail} (retry after {retry_after_ms} ms)"),
            RdpError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for RdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = RdpError::Parse {
            context: "nodes".into(),
            line: Some(12),
            message: "bad width".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("nodes") && s.contains("12") && s.contains("bad width"),
            "{s}"
        );

        let e = RdpError::non_finite(Stage::WirelengthGp, "wa gradient", Some(7), 3, f64::NAN);
        let s = e.to_string();
        assert!(
            s.contains("wirelength-gp") && s.contains("iteration 7"),
            "{s}"
        );
        assert_eq!(e.stage(), Some(Stage::WirelengthGp));
    }

    #[test]
    fn service_variants_carry_no_stage_and_display_context() {
        let e = RdpError::Deadline {
            detail: "job 3".into(),
            elapsed_ms: 1500,
            budget_ms: 1000,
        };
        assert_eq!(e.stage(), None);
        let s = e.to_string();
        assert!(
            s.contains("1500") && s.contains("1000") && s.contains("job 3"),
            "{s}"
        );

        let e = RdpError::Busy {
            detail: "queue full (8 jobs)".into(),
            retry_after_ms: 250,
        };
        assert_eq!(e.stage(), None);
        assert!(e.to_string().contains("retry after 250 ms"), "{e}");

        assert!(RdpError::protocol("oversized frame")
            .to_string()
            .contains("protocol error"));
        assert!(RdpError::internal("worker panicked")
            .to_string()
            .contains("internal error"));
        assert!(RdpError::Cancelled {
            detail: "drain".into()
        }
        .to_string()
        .contains("cancelled"));
    }

    #[test]
    fn stage_display_is_stable() {
        // Checkpoint format warnings embed stage names; keep them stable.
        assert_eq!(Stage::Routability.to_string(), "routability");
        assert_eq!(Stage::Dpa.to_string(), "dpa");
    }
}
