//! # rdp-guard — robustness layer for the placement/routing flow
//!
//! Four pillars, threaded through `rdp-parse`, `rdp-core`, `rdp-route`,
//! `rdp-poisson`, and the top-level pipeline:
//!
//! 1. **Structured errors** ([`RdpError`], [`Stage`]): every non-test
//!    failure path reports a typed error with stage/iteration context
//!    instead of panicking.
//! 2. **Numerical-health monitor** ([`HealthPolicy`]): single-comparison
//!    NaN/Inf/magnitude sentinels over gradients, fields, and Poisson
//!    solutions, plus a loose divergence test that drives automatic step
//!    rollback with γ/λ re-tuning in `rdp-core`.
//! 3. **Versioned binary snapshots** ([`SnapshotWriter`],
//!    [`SnapshotReader`]): bit-exact checkpoint/restore so an interrupted
//!    flow resumes to the same answer, verified bitwise.
//! 4. **Warnings** ([`Warning`]): degraded-mode completions (RUDY-only
//!    congestion fallback, skipped DPA addend, rollbacks) are recorded in
//!    the flow report rather than lost in a log.
//!
//! The fault-injection side lives in `rdp-testkit` (`FaultPlan`) and the
//! workspace `tests/robustness.rs` suite.

mod error;
mod health;
mod snapshot;

pub use error::{RdpError, Stage};
pub use health::HealthPolicy;
pub use snapshot::{SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC};

use std::fmt;

/// A recoverable anomaly the flow worked around in degraded mode.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// Stage that degraded.
    pub stage: Stage,
    /// Routability iteration (0 = wirelength phase / setup).
    pub iteration: usize,
    /// Human-readable description of what happened and the fallback taken.
    pub message: String,
}

impl Warning {
    pub fn new(stage: Stage, iteration: usize, message: impl Into<String>) -> Self {
        Warning {
            stage,
            iteration,
            message: message.into(),
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}#{}] {}", self.stage, self.iteration, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warning_display() {
        let w = Warning::new(
            Stage::Routing,
            3,
            "router congestion non-finite; using RUDY",
        );
        let s = w.to_string();
        assert!(
            s.contains("routing") && s.contains('3') && s.contains("RUDY"),
            "{s}"
        );
    }
}
