//! Property-based tests for the FFT/DCT kernels and the Poisson solver.

use proptest::prelude::*;
use rdp_poisson::{dct2, fft_in_place, idct, idxst, ifft_in_place, Complex, PoissonSolver};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_is_identity(re in finite_vec(32), im in finite_vec(32)) {
        let x: Vec<Complex> = re.iter().zip(&im).map(|(&r, &i)| Complex::new(r, i)).collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        ifft_in_place(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_is_linear(a in finite_vec(16), b in finite_vec(16), s in -3.0f64..3.0) {
        let xa: Vec<Complex> = a.iter().map(|&r| Complex::new(r, 0.0)).collect();
        let xb: Vec<Complex> = b.iter().map(|&r| Complex::new(r, 0.0)).collect();
        let mut fa = xa.clone();
        let mut fb = xb.clone();
        fft_in_place(&mut fa);
        fft_in_place(&mut fb);
        let mut combined: Vec<Complex> = xa
            .iter()
            .zip(&xb)
            .map(|(&u, &v)| u.scale(s) + v)
            .collect();
        fft_in_place(&mut combined);
        for i in 0..16 {
            let expect = fa[i].scale(s) + fb[i];
            prop_assert!((combined[i].re - expect.re).abs() < 1e-7);
            prop_assert!((combined[i].im - expect.im).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_parseval(re in finite_vec(64)) {
        let x: Vec<Complex> = re.iter().map(|&r| Complex::new(r, 0.0)).collect();
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        fft_in_place(&mut y);
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    #[test]
    fn dct_roundtrip_scales_by_half_n(x in finite_vec(32)) {
        let y = idct(&dct2(&x));
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((a - b * 16.0).abs() < 1e-7);
        }
    }

    #[test]
    fn idxst_matches_direct_sum(c in finite_vec(16)) {
        let fast = idxst(&c);
        for n in 0..16 {
            let direct: f64 = (0..16)
                .map(|k| {
                    c[k] * (std::f64::consts::PI * k as f64 * (n as f64 + 0.5) / 16.0).sin()
                })
                .sum();
            prop_assert!((fast[n] - direct).abs() < 1e-8);
        }
    }

    #[test]
    fn solver_zero_mean_psi_and_linearity(rho in finite_vec(64), s in 0.1f64..4.0) {
        let solver = PoissonSolver::new(8, 8, 20.0, 10.0);
        let sol = solver.solve(&rho);
        let mean: f64 = sol.psi.iter().sum::<f64>() / 64.0;
        prop_assert!(mean.abs() < 1e-7);

        let scaled: Vec<f64> = rho.iter().map(|v| v * s).collect();
        let sol2 = solver.solve(&scaled);
        for i in 0..64 {
            prop_assert!((sol2.psi[i] - s * sol.psi[i]).abs() < 1e-6);
            prop_assert!((sol2.ex[i] - s * sol.ex[i]).abs() < 1e-6);
            prop_assert!((sol2.ey[i] - s * sol.ey[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn solver_ignores_dc_offset(rho in finite_vec(64), dc in -50.0f64..50.0) {
        let solver = PoissonSolver::new(8, 8, 16.0, 16.0);
        let shifted: Vec<f64> = rho.iter().map(|v| v + dc).collect();
        let a = solver.solve(&rho);
        let b = solver.solve(&shifted);
        for i in 0..64 {
            prop_assert!((a.psi[i] - b.psi[i]).abs() < 1e-7);
            prop_assert!((a.ex[i] - b.ex[i]).abs() < 1e-7);
        }
    }
}
