//! Property-based tests for the FFT/DCT kernels and the Poisson solver
//! (rdp-testkit harness).

use rdp_poisson::{dct2, fft_in_place, idct, idxst, ifft_in_place, Complex, PoissonSolver};
use rdp_testkit::{prop_assert, prop_check, range, vecs, PropConfig};

fn finite_vec(len: usize) -> impl rdp_testkit::Gen<Value = Vec<f64>> {
    vecs(range(-100.0f64..100.0), len..len + 1)
}

#[test]
fn fft_roundtrip_is_identity() {
    prop_check!(
        PropConfig::cases(64),
        (finite_vec(32), finite_vec(32)),
        |(re, im): (Vec<f64>, Vec<f64>)| {
            let x: Vec<Complex> = re
                .iter()
                .zip(&im)
                .map(|(&r, &i)| Complex::new(r, i))
                .collect();
            let mut y = x.clone();
            fft_in_place(&mut y);
            ifft_in_place(&mut y);
            for (a, b) in y.iter().zip(&x) {
                prop_assert!((a.re - b.re).abs() < 1e-8);
                prop_assert!((a.im - b.im).abs() < 1e-8);
            }
            Ok(())
        }
    );
}

#[test]
fn fft_is_linear() {
    prop_check!(
        PropConfig::cases(64),
        (finite_vec(16), finite_vec(16), range(-3.0f64..3.0)),
        |(a, b, s): (Vec<f64>, Vec<f64>, f64)| {
            let xa: Vec<Complex> = a.iter().map(|&r| Complex::new(r, 0.0)).collect();
            let xb: Vec<Complex> = b.iter().map(|&r| Complex::new(r, 0.0)).collect();
            let mut fa = xa.clone();
            let mut fb = xb.clone();
            fft_in_place(&mut fa);
            fft_in_place(&mut fb);
            let mut combined: Vec<Complex> =
                xa.iter().zip(&xb).map(|(&u, &v)| u.scale(s) + v).collect();
            fft_in_place(&mut combined);
            for i in 0..16 {
                let expect = fa[i].scale(s) + fb[i];
                prop_assert!((combined[i].re - expect.re).abs() < 1e-7);
                prop_assert!((combined[i].im - expect.im).abs() < 1e-7);
            }
            Ok(())
        }
    );
}

#[test]
fn fft_parseval() {
    prop_check!(PropConfig::cases(64), finite_vec(64), |re: Vec<f64>| {
        let x: Vec<Complex> = re.iter().map(|&r| Complex::new(r, 0.0)).collect();
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        fft_in_place(&mut y);
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
        Ok(())
    });
}

#[test]
fn dct_roundtrip_scales_by_half_n() {
    prop_check!(PropConfig::cases(64), finite_vec(32), |x: Vec<f64>| {
        let y = idct(&dct2(&x));
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((a - b * 16.0).abs() < 1e-7);
        }
        Ok(())
    });
}

/// Normalized DCT round trip: `idct(dct2(x)) * 2/n` recovers `x` exactly
/// (forward ∘ inverse ≈ identity) at several transform sizes.
#[test]
fn dct_normalized_roundtrip_is_identity() {
    for n in [4usize, 16, 64, 256] {
        prop_check!(PropConfig::cases(16), finite_vec(n), |x: Vec<f64>| {
            let y = idct(&dct2(&x));
            let scale = 2.0 / n as f64;
            for (i, (a, b)) in y.iter().zip(&x).enumerate() {
                prop_assert!(
                    (a * scale - b).abs() < 1e-7 * b.abs().max(1.0),
                    "n={} i={} got {} want {}",
                    n,
                    i,
                    a * scale,
                    b
                );
            }
            Ok(())
        });
    }
}

#[test]
fn idxst_matches_direct_sum() {
    prop_check!(PropConfig::cases(64), finite_vec(16), |c: Vec<f64>| {
        let fast = idxst(&c);
        for n in 0..16 {
            let direct: f64 = (0..16)
                .map(|k| c[k] * (std::f64::consts::PI * k as f64 * (n as f64 + 0.5) / 16.0).sin())
                .sum();
            prop_assert!((fast[n] - direct).abs() < 1e-8);
        }
        Ok(())
    });
}

#[test]
fn solver_zero_mean_psi_and_linearity() {
    prop_check!(
        PropConfig::cases(64),
        (finite_vec(64), range(0.1f64..4.0)),
        |(rho, s): (Vec<f64>, f64)| {
            let solver = PoissonSolver::new(8, 8, 20.0, 10.0);
            let sol = solver.solve(&rho);
            let mean: f64 = sol.psi.iter().sum::<f64>() / 64.0;
            prop_assert!(mean.abs() < 1e-7);

            let scaled: Vec<f64> = rho.iter().map(|v| v * s).collect();
            let sol2 = solver.solve(&scaled);
            for i in 0..64 {
                prop_assert!((sol2.psi[i] - s * sol.psi[i]).abs() < 1e-6);
                prop_assert!((sol2.ex[i] - s * sol.ex[i]).abs() < 1e-6);
                prop_assert!((sol2.ey[i] - s * sol.ey[i]).abs() < 1e-6);
            }
            Ok(())
        }
    );
}

#[test]
fn solver_ignores_dc_offset() {
    prop_check!(
        PropConfig::cases(64),
        (finite_vec(64), range(-50.0f64..50.0)),
        |(rho, dc): (Vec<f64>, f64)| {
            let solver = PoissonSolver::new(8, 8, 16.0, 16.0);
            let shifted: Vec<f64> = rho.iter().map(|v| v + dc).collect();
            let a = solver.solve(&rho);
            let b = solver.solve(&shifted);
            for i in 0..64 {
                prop_assert!((a.psi[i] - b.psi[i]).abs() < 1e-7);
                prop_assert!((a.ex[i] - b.ex[i]).abs() < 1e-7);
            }
            Ok(())
        }
    );
}
