//! # rdp-poisson — spectral Poisson solver for electrostatic placement
//!
//! Implements the numerics behind ePlace-style electrostatic placement
//! (Lu et al., TODAES 2015), reused by the paper both for cell density and
//! for its differentiable routing-congestion function:
//!
//! * a radix-2 complex [FFT](fft_in_place),
//! * fast DCT-II / DCT-III / shifted-DST transforms ([`dct2`], [`idct`],
//!   [`idxst`]),
//! * the Neumann-boundary [`PoissonSolver`] returning potential ψ and field
//!   `E = −∇ψ` on the bin grid.
//!
//! The crate operates on plain `&[f64]` row-major buffers so it can be
//! reused outside the placement stack. Transforms and solves accept an
//! optional [`rdp_par::Pool`] (`*_with` variants); results are
//! bit-identical for any thread count — see the `rdp-par` crate docs for
//! the determinism contract.
//!
//! ```
//! use rdp_poisson::PoissonSolver;
//!
//! let solver = PoissonSolver::new(16, 16, 100.0, 100.0);
//! let mut rho = vec![0.0; 256];
//! rho[16 * 8 + 8] = 4.0; // a point charge
//! let sol = solver.solve(&rho);
//! assert_eq!(sol.psi.len(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod dct;
mod fft;
mod solver;

pub use complex::Complex;
pub use dct::{
    dct2, dct2_2d, dct2_2d_with, dct2_with, idct, idct_with, idxst, idxst_with, DctScratch,
};
pub use fft::{
    fft_in_place, fft_in_place_tw, fill_twiddles, ifft_in_place, ifft_unnormalized_in_place,
    ifft_unnormalized_in_place_tw, is_power_of_two,
};
pub use solver::{PoissonSolution, PoissonSolver};
