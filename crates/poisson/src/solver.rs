//! Spectral solver for the placement Poisson problem (Eq. (1) of the
//! paper, following ePlace):
//!
//! ```text
//!   ∇·∇ψ(x,y) = −ρ(x,y)   in R,
//!   n·∇ψ(x,y) = 0          on ∂R   (Neumann),
//!   ∬ρ = ∬ψ = 0            (compatibility / zero mean).
//! ```
//!
//! With Neumann boundaries the eigenbasis is the half-sample-shifted
//! cosine basis, so the solution is three fast transforms: a forward 2-D
//! DCT of ρ, a frequency-domain division by `w_u² + w_v²`, and inverse
//! cosine/sine evaluations for the potential ψ and the field
//! `E = −∇ψ`.
//!
//! The same solver serves both uses in the paper: cell density (charge =
//! cell area, Section II-A) and routing congestion (charge = demand ÷
//! capacity, Section II-B).

use crate::dct::{idct_with, idxst_with, transpose_tiled, DctScratch};
use crate::fft::is_power_of_two;
use rdp_par::{chunk_len, Pool};

/// Potential and field returned by [`PoissonSolver::solve`], all row-major
/// `nx × ny` grids sampled at bin centers.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonSolution {
    /// Electric potential ψ.
    pub psi: Vec<f64>,
    /// Field x-component `E_x = −∂ψ/∂x`.
    pub ex: Vec<f64>,
    /// Field y-component `E_y = −∂ψ/∂y`.
    pub ey: Vec<f64>,
}

/// Spectral Neumann Poisson solver on a fixed `nx × ny` grid covering a
/// `width × height` physical region.
///
/// ```
/// use rdp_poisson::PoissonSolver;
///
/// let solver = PoissonSolver::new(8, 8, 80.0, 80.0);
/// // a centered positive charge blob
/// let mut rho = vec![0.0; 64];
/// rho[8 * 4 + 4] = 1.0;
/// let sol = solver.solve(&rho);
/// // zero-mean potential (compatibility condition)
/// let mean: f64 = sol.psi.iter().sum::<f64>() / 64.0;
/// assert!(mean.abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonSolver {
    nx: usize,
    ny: usize,
    /// Frequencies w_u = πu / width.
    wx: Vec<f64>,
    /// Frequencies w_v = πv / height.
    wy: Vec<f64>,
}

impl PoissonSolver {
    /// Creates a solver for an `nx × ny` grid over a `width × height`
    /// region (microns).
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are powers of two ≥ 2 and the region
    /// has positive extent.
    pub fn new(nx: usize, ny: usize, width: f64, height: f64) -> Self {
        assert!(
            is_power_of_two(nx) && is_power_of_two(ny) && nx >= 2 && ny >= 2,
            "grid dims must be powers of two >= 2, got {nx}x{ny}"
        );
        assert!(
            width > 0.0 && height > 0.0,
            "region must have positive size"
        );
        let wx = (0..nx)
            .map(|u| std::f64::consts::PI * u as f64 / width)
            .collect();
        let wy = (0..ny)
            .map(|v| std::f64::consts::PI * v as f64 / height)
            .collect();
        PoissonSolver { nx, ny, wx, wy }
    }

    /// Non-panicking [`PoissonSolver::new`]: returns a typed error on bad
    /// grid dimensions or a degenerate region instead of aborting.
    pub fn try_new(
        nx: usize,
        ny: usize,
        width: f64,
        height: f64,
    ) -> Result<Self, rdp_guard::RdpError> {
        if !(is_power_of_two(nx) && is_power_of_two(ny) && nx >= 2 && ny >= 2) {
            return Err(rdp_guard::RdpError::Config {
                detail: format!("poisson grid dims must be powers of two >= 2, got {nx}x{ny}"),
            });
        }
        if !(width > 0.0 && height > 0.0) || !width.is_finite() || !height.is_finite() {
            return Err(rdp_guard::RdpError::Config {
                detail: format!(
                    "poisson region must have positive finite size, got {width}x{height}"
                ),
            });
        }
        Ok(PoissonSolver::new(nx, ny, width, height))
    }

    /// [`PoissonSolver::solve`] with input/output health sentinels: the
    /// charge map must be the right size and finite, and the returned
    /// ψ/E fields are scanned before being handed back.
    pub fn solve_checked(
        &self,
        rho: &[f64],
        health: &rdp_guard::HealthPolicy,
    ) -> Result<PoissonSolution, rdp_guard::RdpError> {
        use rdp_guard::Stage;
        if rho.len() != self.nx * self.ny {
            return Err(rdp_guard::RdpError::Config {
                detail: format!(
                    "poisson charge buffer has {} entries, grid wants {}",
                    rho.len(),
                    self.nx * self.ny
                ),
            });
        }
        health.check_slice(Stage::Poisson, "charge density", None, rho)?;
        let sol = self.solve(rho);
        health.check_slice(Stage::Poisson, "potential psi", None, &sol.psi)?;
        health.check_slice(Stage::Poisson, "field ex", None, &sol.ex)?;
        health.check_slice(Stage::Poisson, "field ey", None, &sol.ey)?;
        Ok(sol)
    }

    /// Grid width in bins.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in bins.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Solves `∇²ψ = −ρ` and returns ψ together with `E = −∇ψ`.
    ///
    /// The mean of `rho` is implicitly removed (the DC mode is dropped),
    /// enforcing the compatibility condition; callers may pass any map.
    ///
    /// # Panics
    ///
    /// Panics if `rho.len() != nx * ny`.
    pub fn solve(&self, rho: &[f64]) -> PoissonSolution {
        self.solve_with(rho, Pool::global())
    }

    /// [`PoissonSolver::solve`] on an explicit pool.
    ///
    /// Every 1-D transform inside the solve operates on its own row or
    /// column window, so the result is bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `rho.len() != nx * ny`.
    pub fn solve_with(&self, rho: &[f64], pool: Pool) -> PoissonSolution {
        let (nx, ny) = (self.nx, self.ny);
        assert_eq!(rho.len(), nx * ny, "density buffer size mismatch");

        // Forward analysis: A[u,v] = Σ ρ cos·cos  (row-major, u along x).
        let a = crate::dct::dct2_2d_with(rho, nx, ny, pool);

        // Series coefficients of ψ: the inverse-DCT normalization 4/(nx·ny)
        // and the ½ weights at u=0 / v=0 cancel against the full-weight
        // series evaluation below, leaving a single uniform constant.
        let norm = 4.0 / (nx as f64 * ny as f64);
        let mut q = vec![0.0; nx * ny];
        for v in 0..ny {
            for u in 0..nx {
                if u == 0 && v == 0 {
                    continue; // DC mode dropped: zero-mean ψ.
                }
                let w2 = self.wx[u] * self.wx[u] + self.wy[v] * self.wy[v];
                q[v * nx + u] = norm * a[v * nx + u] / w2;
            }
        }

        // ψ and E_y share their pass-1: E_y's row-v transform input is
        // wy[v]·q[v·nx..], and the per-row weight is constant along the
        // row, so E_y's pass-1 equals ψ's pass-1 scaled row-wise by wy[v].
        // One transform sweep (ny inverse DCTs) is replaced by nx·ny
        // multiplies. E_x cannot share: its pass-1 uses the sine basis.
        let t_cos = self.pass1(&q, Basis::Cos, None, pool);
        let psi = self.pass2(&t_cos, Basis::Cos, pool);
        let ex = {
            let t = self.pass1(&q, Basis::Sin, Some(&self.wx), pool);
            self.pass2(&t, Basis::Cos, pool)
        };
        let ey = {
            let mut t = t_cos;
            for (v, row) in t.chunks_mut(nx).enumerate() {
                let w = self.wy[v];
                for x in row {
                    *x *= w;
                }
            }
            self.pass2(&t, Basis::Sin, pool)
        };
        PoissonSolution { psi, ex, ey }
    }

    /// Series-evaluation pass 1: transforms along u for every v,
    /// optionally premultiplying the coefficients by per-`u` weights (the
    /// ∂/∂x factor). Each row of the result is an independent 1-D inverse
    /// transform, so rows parallelize with no change to per-element
    /// arithmetic. A per-`v` weight is applied by the caller scaling the
    /// returned rows (constant along a row — see `solve_with`).
    fn pass1(&self, q: &[f64], bx: Basis, weight_x: Option<&[f64]>, pool: Pool) -> Vec<f64> {
        let (nx, ny) = (self.nx, self.ny);
        let mut t = vec![0.0; nx * ny];
        let row_chunk = chunk_len(ny, 32, 4);
        pool.for_chunks_mut(
            &mut t,
            row_chunk * nx,
            || (DctScratch::new(), vec![0.0; nx]),
            |(scratch, row), _ci, offset, window| {
                for (r, out_row) in window.chunks_mut(nx).enumerate() {
                    let v = offset / nx + r;
                    for u in 0..nx {
                        let mut c = q[v * nx + u];
                        if let Some(w) = weight_x {
                            c *= w[u];
                        }
                        // `idct` halves its k = 0 term; that halving is
                        // exactly the c₀ = ½ factor of the inverse-DCT
                        // normalization, so the coefficients are passed
                        // through unmodified.
                        row[u] = c;
                    }
                    match bx {
                        Basis::Cos => idct_with(row, out_row, scratch),
                        Basis::Sin => idxst_with(row, out_row, scratch),
                    }
                }
            },
        );
        t
    }

    /// Series-evaluation pass 2: transforms along v for every n. One
    /// cache-blocked transpose makes every column a contiguous slice (the
    /// former per-column gather walked the whole `t` buffer once per
    /// column), then a second transpose restores row-major order.
    fn pass2(&self, t: &[f64], by: Basis, pool: Pool) -> Vec<f64> {
        let (nx, ny) = (self.nx, self.ny);
        let mut tt = vec![0.0; nx * ny];
        transpose_tiled(t, nx, ny, &mut tt);
        let mut cols = vec![0.0; nx * ny];
        let col_chunk = chunk_len(nx, 32, 4);
        pool.for_chunks_mut(
            &mut cols,
            col_chunk * ny,
            DctScratch::new,
            |scratch, _ci, offset, window| {
                for (c, out_col) in window.chunks_mut(ny).enumerate() {
                    let n = offset / ny + c;
                    let col = &tt[n * ny..(n + 1) * ny];
                    match by {
                        Basis::Cos => idct_with(col, out_col, scratch),
                        Basis::Sin => idxst_with(col, out_col, scratch),
                    }
                }
            },
        );
        let mut out = vec![0.0; nx * ny];
        transpose_tiled(&cols, ny, nx, &mut out);
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Basis {
    Cos,
    Sin,
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI: f64 = std::f64::consts::PI;

    /// Single (u0,v0) cosine mode must be an exact eigenfunction.
    #[test]
    fn single_mode_eigenfunction() {
        let (nx, ny) = (16, 8);
        let (w, h) = (32.0, 16.0);
        let solver = PoissonSolver::new(nx, ny, w, h);
        let (u0, v0) = (3usize, 2usize);
        let wu = PI * u0 as f64 / w;
        let wv = PI * v0 as f64 / h;
        let mut rho = vec![0.0; nx * ny];
        for m in 0..ny {
            for n in 0..nx {
                rho[m * nx + n] = (PI * u0 as f64 * (n as f64 + 0.5) / nx as f64).cos()
                    * (PI * v0 as f64 * (m as f64 + 0.5) / ny as f64).cos();
            }
        }
        let sol = solver.solve(&rho);
        let k = 1.0 / (wu * wu + wv * wv);
        for m in 0..ny {
            for n in 0..nx {
                let expected_psi = k * rho[m * nx + n];
                assert!(
                    (sol.psi[m * nx + n] - expected_psi).abs() < 1e-9,
                    "psi({n},{m}) = {} expected {expected_psi}",
                    sol.psi[m * nx + n]
                );
                let expected_ex = k
                    * wu
                    * (PI * u0 as f64 * (n as f64 + 0.5) / nx as f64).sin()
                    * (PI * v0 as f64 * (m as f64 + 0.5) / ny as f64).cos();
                assert!(
                    (sol.ex[m * nx + n] - expected_ex).abs() < 1e-9,
                    "ex({n},{m}) = {} expected {expected_ex}",
                    sol.ex[m * nx + n]
                );
                let expected_ey = k
                    * wv
                    * (PI * u0 as f64 * (n as f64 + 0.5) / nx as f64).cos()
                    * (PI * v0 as f64 * (m as f64 + 0.5) / ny as f64).sin();
                assert!((sol.ey[m * nx + n] - expected_ey).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn constant_density_gives_zero_everything() {
        let solver = PoissonSolver::new(8, 8, 10.0, 10.0);
        let rho = vec![2.5; 64];
        let sol = solver.solve(&rho);
        for i in 0..64 {
            assert!(sol.psi[i].abs() < 1e-9);
            assert!(sol.ex[i].abs() < 1e-9);
            assert!(sol.ey[i].abs() < 1e-9);
        }
    }

    #[test]
    fn psi_has_zero_mean() {
        let solver = PoissonSolver::new(16, 16, 50.0, 50.0);
        let rho: Vec<f64> = (0..256).map(|i| ((i * 31 % 13) as f64) - 3.0).collect();
        let sol = solver.solve(&rho);
        let mean: f64 = sol.psi.iter().sum::<f64>() / 256.0;
        assert!(mean.abs() < 1e-9);
    }

    /// A positive charge blob pushes test charges away: E points outward.
    #[test]
    fn field_points_away_from_charge() {
        let (nx, ny) = (32, 32);
        let solver = PoissonSolver::new(nx, ny, 64.0, 64.0);
        let mut rho = vec![0.0; nx * ny];
        // Blob around (10, 16).
        for m in 14..19 {
            for n in 8..13 {
                rho[m * nx + n] = 1.0;
            }
        }
        let sol = solver.solve(&rho);
        // Right of the blob, Ex must be positive (pointing right/away);
        // left of the blob, negative.
        let m = 16;
        assert!(
            sol.ex[m * nx + 16] > 0.0,
            "ex right of blob: {}",
            sol.ex[m * nx + 16]
        );
        assert!(
            sol.ex[m * nx + 4] < 0.0,
            "ex left of blob: {}",
            sol.ex[m * nx + 4]
        );
        // Above the blob Ey > 0, below Ey < 0.
        let n = 10;
        assert!(sol.ey[22 * nx + n] > 0.0);
        assert!(sol.ey[10 * nx + n] < 0.0);
        // Potential is highest at the blob.
        let peak = sol.psi[16 * nx + 10];
        assert!(peak >= sol.psi[16 * nx + 30]);
        assert!(peak >= sol.psi[2 * nx + 10]);
    }

    /// E must approximate −∇ψ: central finite differences on a smooth blob.
    #[test]
    fn field_is_negative_gradient_of_potential() {
        let (nx, ny) = (32, 32);
        let (w, h) = (32.0, 32.0);
        let solver = PoissonSolver::new(nx, ny, w, h);
        let mut rho = vec![0.0; nx * ny];
        for m in 0..ny {
            for n in 0..nx {
                let dx = (n as f64 - 15.5) / 4.0;
                let dy = (m as f64 - 15.5) / 4.0;
                rho[m * nx + n] = (-0.5 * (dx * dx + dy * dy)).exp();
            }
        }
        let sol = solver.solve(&rho);
        let hx = w / nx as f64;
        let hy = h / ny as f64;
        let mut max_rel = 0.0f64;
        for m in 2..ny - 2 {
            for n in 2..nx - 2 {
                let dpsi_dx = (sol.psi[m * nx + n + 1] - sol.psi[m * nx + n - 1]) / (2.0 * hx);
                let dpsi_dy = (sol.psi[(m + 1) * nx + n] - sol.psi[(m - 1) * nx + n]) / (2.0 * hy);
                let scale = sol.ex[m * nx + n].abs().max(0.05);
                max_rel = max_rel.max(((sol.ex[m * nx + n] + dpsi_dx) / scale).abs());
                let scale_y = sol.ey[m * nx + n].abs().max(0.05);
                max_rel = max_rel.max(((sol.ey[m * nx + n] + dpsi_dy) / scale_y).abs());
            }
        }
        assert!(max_rel < 0.08, "max relative deviation {max_rel}");
    }

    /// Discrete Laplacian of ψ reproduces −ρ in the interior for a smooth,
    /// band-limited density.
    #[test]
    fn laplacian_residual_small_for_smooth_density() {
        let (nx, ny) = (64, 64);
        let (w, h) = (64.0, 64.0);
        let solver = PoissonSolver::new(nx, ny, w, h);
        // Smooth low-frequency density, zero mean by construction below.
        let mut rho = vec![0.0; nx * ny];
        for m in 0..ny {
            for n in 0..nx {
                rho[m * nx + n] = (PI * 2.0 * (n as f64 + 0.5) / nx as f64).cos()
                    + 0.5 * (PI * 3.0 * (m as f64 + 0.5) / ny as f64).cos();
            }
        }
        let sol = solver.solve(&rho);
        let hx = w / nx as f64;
        for m in 1..ny - 1 {
            for n in 1..nx - 1 {
                let lap = (sol.psi[m * nx + n + 1]
                    + sol.psi[m * nx + n - 1]
                    + sol.psi[(m + 1) * nx + n]
                    + sol.psi[(m - 1) * nx + n]
                    - 4.0 * sol.psi[m * nx + n])
                    / (hx * hx);
                // 2nd-order FD error for these low frequencies is ≲ 1 %.
                assert!(
                    (lap + rho[m * nx + n]).abs() < 0.02,
                    "residual at ({n},{m}): {}",
                    (lap + rho[m * nx + n]).abs()
                );
            }
        }
    }

    #[test]
    fn linearity_of_solver() {
        let solver = PoissonSolver::new(8, 8, 8.0, 8.0);
        let r1: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let r2: Vec<f64> = (0..64).map(|i| ((i * 3) % 5) as f64 - 2.0).collect();
        let sum: Vec<f64> = r1.iter().zip(&r2).map(|(a, b)| 2.0 * a + b).collect();
        let s1 = solver.solve(&r1);
        let s2 = solver.solve(&r2);
        let s = solver.solve(&sum);
        for i in 0..64 {
            assert!((s.psi[i] - (2.0 * s1.psi[i] + s2.psi[i])).abs() < 1e-9);
            assert!((s.ex[i] - (2.0 * s1.ex[i] + s2.ex[i])).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn bad_dims_panic() {
        PoissonSolver::new(12, 8, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_buffer_panics() {
        let s = PoissonSolver::new(8, 8, 1.0, 1.0);
        s.solve(&[0.0; 10]);
    }

    #[test]
    fn try_new_rejects_bad_config_without_panicking() {
        assert!(PoissonSolver::try_new(12, 8, 1.0, 1.0).is_err());
        assert!(PoissonSolver::try_new(8, 8, 0.0, 1.0).is_err());
        assert!(PoissonSolver::try_new(8, 8, f64::NAN, 1.0).is_err());
        assert!(PoissonSolver::try_new(8, 8, 8.0, 8.0).is_ok());
    }

    #[test]
    fn solve_checked_flags_bad_charge_and_matches_solve() {
        let s = PoissonSolver::new(8, 8, 8.0, 8.0);
        let health = rdp_guard::HealthPolicy::default();
        // Wrong size: typed error, no panic.
        assert!(s.solve_checked(&[0.0; 10], &health).is_err());
        // NaN charge: typed error.
        let mut rho = vec![0.0; 64];
        rho[5] = f64::NAN;
        assert!(s.solve_checked(&rho, &health).is_err());
        // Healthy charge: identical to the unchecked path.
        rho[5] = 1.0;
        let a = s.solve(&rho);
        let b = s.solve_checked(&rho, &health).unwrap();
        assert_eq!(a, b);
    }
}
