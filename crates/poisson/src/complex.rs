//! Minimal complex arithmetic for the FFT kernels.

use std::ops::{Add, Mul, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn cis_unit_circle() {
        let c = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((c.re).abs() < 1e-15);
        assert!((c.im - 1.0).abs() < 1e-15);
    }
}
