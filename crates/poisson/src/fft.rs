//! Iterative radix-2 complex FFT.
//!
//! Power-of-two sizes only; the placement grids used throughout the
//! workspace are chosen as powers of two, so no mixed-radix machinery is
//! needed.

use crate::complex::Complex;

/// Returns true when `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place forward FFT: `X[k] = Σ_n x[n]·e^{-2πikn/N}`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    fft_dir(buf, false);
}

/// In-place inverse FFT including the `1/N` normalization:
/// `x[n] = (1/N)·Σ_k X[k]·e^{+2πikn/N}`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    fft_dir(buf, true);
    let inv = 1.0 / buf.len() as f64;
    for v in buf.iter_mut() {
        *v = v.scale(inv);
    }
}

/// In-place inverse FFT **without** the `1/N` normalization:
/// `x[n] = Σ_k X[k]·e^{+2πikn/N}`. Used by the DCT kernels, which fold the
/// normalization into their own closed-form constants.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_unnormalized_in_place(buf: &mut [Complex]) {
    fft_dir(buf, true);
}

fn fft_dir(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(is_power_of_two(n), "FFT length {n} is not a power of two");
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Cooley–Tukey butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2] * w;
                buf[start + k] = a + b;
                buf[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Fills `tw` with the forward half-spectrum twiddle table
/// `tw[k] = e^{-2πik/n}` for `k < n/2`. A butterfly stage of span `len`
/// reads `tw[k · n/len]`; the inverse transform conjugates on the fly.
///
/// Precomputing the table replaces the sequential `w ·= wlen` recurrence
/// of the scalar path — which chains every butterfly of a block through
/// a complex multiply and blocks vectorization — with independent table
/// loads (and is slightly *more* accurate: each entry is one `cis`, not
/// `k` accumulated rotations). Used by the DCT kernels through
/// [`crate::dct::DctScratch`], which caches one table per transform
/// length.
pub fn fill_twiddles(n: usize, tw: &mut Vec<Complex>) {
    assert!(is_power_of_two(n), "FFT length {n} is not a power of two");
    tw.clear();
    tw.extend((0..n / 2).map(|k| Complex::cis(-std::f64::consts::TAU * k as f64 / n as f64)));
}

/// [`fft_in_place`] with a precomputed twiddle table from
/// [`fill_twiddles`] (no trigonometry in the butterfly loops).
///
/// # Panics
///
/// Panics if the length is not a power of two or `tw.len() != n/2`.
pub fn fft_in_place_tw(buf: &mut [Complex], tw: &[Complex]) {
    fft_dir_tw(buf, tw, false);
}

/// [`ifft_unnormalized_in_place`] with a precomputed twiddle table.
///
/// # Panics
///
/// Panics if the length is not a power of two or `tw.len() != n/2`.
pub fn ifft_unnormalized_in_place_tw(buf: &mut [Complex], tw: &[Complex]) {
    fft_dir_tw(buf, tw, true);
}

fn fft_dir_tw(buf: &mut [Complex], tw: &[Complex], inverse: bool) {
    let n = buf.len();
    assert!(is_power_of_two(n), "FFT length {n} is not a power of two");
    if n == 1 {
        return;
    }
    assert_eq!(tw.len(), n / 2, "twiddle table length");

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { -1.0 } else { 1.0 };
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            let (lo, hi) = buf[start..start + len].split_at_mut(half);
            for k in 0..half {
                // Forward uses the table entry as-is; inverse conjugates.
                let t = tw[k * stride];
                let w = Complex::new(t.re, sign * t.im);
                let a = lo[k];
                let b = hi[k] * w;
                lo[k] = a + b;
                hi[k] = a - b;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (i, &v) in x.iter().enumerate() {
                    acc =
                        acc + v * Complex::cis(-std::f64::consts::TAU * (k * i) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        let reference = naive_dft(&x);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a.re - b.re).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut x);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i * 31 % 17) as f64, (i * 7 % 5) as f64))
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        ifft_in_place(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x.clone();
        fft_in_place(&mut y);
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_in_place(&mut x);
    }

    #[test]
    fn single_element_is_identity() {
        let mut x = vec![Complex::new(3.0, 4.0)];
        fft_in_place(&mut x);
        assert_eq!(x[0], Complex::new(3.0, 4.0));
    }

    #[test]
    fn table_fft_matches_recurrence_fft() {
        for n in [2usize, 4, 8, 64, 256] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.83).sin(), (i as f64 * 1.7).cos()))
                .collect();
            let mut tw = Vec::new();
            fill_twiddles(n, &mut tw);

            let mut a = x.clone();
            let mut b = x.clone();
            fft_in_place(&mut a);
            fft_in_place_tw(&mut b, &tw);
            for (p, q) in a.iter().zip(&b) {
                assert!((p.re - q.re).abs() < 1e-9, "n={n}: {p:?} vs {q:?}");
                assert!((p.im - q.im).abs() < 1e-9);
            }

            let mut a = x.clone();
            let mut b = x.clone();
            ifft_unnormalized_in_place(&mut a);
            ifft_unnormalized_in_place_tw(&mut b, &tw);
            for (p, q) in a.iter().zip(&b) {
                assert!((p.re - q.re).abs() < 1e-9, "inverse n={n}: {p:?} vs {q:?}");
                assert!((p.im - q.im).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn table_fft_roundtrip_identity() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * 31 % 17) as f64, (i * 7 % 5) as f64))
            .collect();
        let mut tw = Vec::new();
        fill_twiddles(n, &mut tw);
        let mut y = x.clone();
        fft_in_place_tw(&mut y, &tw);
        ifft_unnormalized_in_place_tw(&mut y, &tw);
        for (a, b) in y.iter().zip(&x) {
            assert!((a.re / n as f64 - b.re).abs() < 1e-9);
            assert!((a.im / n as f64 - b.im).abs() < 1e-9);
        }
    }
}
