//! Iterative radix-2 complex FFT.
//!
//! Power-of-two sizes only; the placement grids used throughout the
//! workspace are chosen as powers of two, so no mixed-radix machinery is
//! needed.

use crate::complex::Complex;

/// Returns true when `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place forward FFT: `X[k] = Σ_n x[n]·e^{-2πikn/N}`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    fft_dir(buf, false);
}

/// In-place inverse FFT including the `1/N` normalization:
/// `x[n] = (1/N)·Σ_k X[k]·e^{+2πikn/N}`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    fft_dir(buf, true);
    let inv = 1.0 / buf.len() as f64;
    for v in buf.iter_mut() {
        *v = v.scale(inv);
    }
}

/// In-place inverse FFT **without** the `1/N` normalization:
/// `x[n] = Σ_k X[k]·e^{+2πikn/N}`. Used by the DCT kernels, which fold the
/// normalization into their own closed-form constants.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_unnormalized_in_place(buf: &mut [Complex]) {
    fft_dir(buf, true);
}

fn fft_dir(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(is_power_of_two(n), "FFT length {n} is not a power of two");
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Cooley–Tukey butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2] * w;
                buf[start + k] = a + b;
                buf[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (i, &v) in x.iter().enumerate() {
                    acc =
                        acc + v * Complex::cis(-std::f64::consts::TAU * (k * i) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        let reference = naive_dft(&x);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a.re - b.re).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut x);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i * 31 % 17) as f64, (i * 7 % 5) as f64))
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        ifft_in_place(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x.clone();
        fft_in_place(&mut y);
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft_in_place(&mut x);
    }

    #[test]
    fn single_element_is_identity() {
        let mut x = vec![Complex::new(3.0, 4.0)];
        fft_in_place(&mut x);
        assert_eq!(x[0], Complex::new(3.0, 4.0));
    }
}
