//! Fast cosine/sine transforms built on the radix-2 FFT (Makhoul's
//! single-FFT formulation).
//!
//! Conventions (all lengths are powers of two):
//!
//! * [`dct2`]:  `X[k] = Σ_{n} x[n]·cos(πk(n+½)/N)` — the analysis transform.
//! * [`idct`]:  `y[n] = X[0]/2 + Σ_{k≥1} X[k]·cos(πk(n+½)/N)` — the cosine
//!   series evaluation (DCT-III), so `idct(dct2(x)) = (N/2)·x`.
//! * [`idxst`]: `y[n] = Σ_{k} X[k]·sin(πk(n+½)/N)` — the shifted sine series
//!   used for the electric field components (DREAMPlace's "IDXST").

use crate::complex::Complex;
use crate::fft::{fft_in_place_tw, fill_twiddles, ifft_unnormalized_in_place_tw, is_power_of_two};
use rdp_par::{chunk_len, Pool};

/// Reusable buffers for the scratch-based transform variants
/// ([`dct2_with`], [`idct_with`], [`idxst_with`]): one complex FFT
/// buffer, a real staging buffer, and cached twiddle tables. A worker
/// allocates one scratch and reuses it across every row/column it
/// transforms, so the trigonometry for a transform length is computed
/// once per worker instead of once per element per call — the per-call
/// `cis` loops were the dominant cost of the 2-D passes.
#[derive(Debug, Clone, Default)]
pub struct DctScratch {
    v: Vec<Complex>,
    tmp: Vec<f64>,
    /// Quarter-wave table `e^{iπk/2n}` for `k < n` (the Makhoul pre/post
    /// twiddles; the forward transform conjugates on read).
    quarter: Vec<Complex>,
    /// FFT half-spectrum table from [`fill_twiddles`].
    fft_tw: Vec<Complex>,
    /// Transform length the tables are built for (0 = none yet).
    tw_len: usize,
}

impl DctScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DctScratch::default()
    }

    /// (Re)builds the twiddle tables for transform length `n`. The 1-D
    /// kernels call this on entry; alternating lengths through one
    /// scratch works but rebuilds the tables each switch, so the 2-D
    /// passes keep one scratch per pass (fixed length within a pass).
    fn ensure_tables(&mut self, n: usize) {
        if self.tw_len == n {
            return;
        }
        let step = std::f64::consts::PI / (2.0 * n as f64);
        self.quarter.clear();
        self.quarter
            .extend((0..n).map(|k| Complex::cis(step * k as f64)));
        fill_twiddles(n, &mut self.fft_tw);
        self.tw_len = n;
    }
}

/// Cache-blocked out-of-place transpose of a row-major `h × w` matrix
/// (`h` rows of length `w`): `dst[c·h + r] = src[r·w + c]`. The 2-D
/// transform passes use it so every 1-D transform reads a contiguous
/// slice instead of gathering a strided column — at 256×256 and up the
/// strided gather misses cache on every element.
///
/// # Panics
///
/// Panics if either buffer's length differs from `w·h`.
pub(crate) fn transpose_tiled(src: &[f64], w: usize, h: usize, dst: &mut [f64]) {
    const TILE: usize = 32;
    assert_eq!(src.len(), w * h, "transpose source size");
    assert_eq!(dst.len(), w * h, "transpose destination size");
    let mut r0 = 0;
    while r0 < h {
        let r1 = (r0 + TILE).min(h);
        let mut c0 = 0;
        while c0 < w {
            let c1 = (c0 + TILE).min(w);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * h + r] = src[r * w + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// DCT-II of `x`: `X[k] = Σ_n x[n]·cos(πk(n+½)/N)`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    dct2_with(x, &mut out, &mut DctScratch::new());
    out
}

/// [`dct2`] into a caller-owned output slice with reusable scratch
/// (no per-call allocation once the scratch has grown).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two or `out.len() != x.len()`.
pub fn dct2_with(x: &[f64], out: &mut [f64], scratch: &mut DctScratch) {
    let n = x.len();
    assert!(is_power_of_two(n), "DCT length {n} is not a power of two");
    assert_eq!(out.len(), n, "output buffer size");
    if n == 1 {
        out[0] = x[0];
        return;
    }
    // Makhoul reordering: evens ascending then odds descending.
    scratch.ensure_tables(n);
    let DctScratch {
        v, quarter, fft_tw, ..
    } = scratch;
    v.clear();
    v.resize(n, Complex::ZERO);
    let half = n.div_ceil(2);
    for i in 0..half {
        v[i] = Complex::new(x[2 * i], 0.0);
    }
    for i in 0..n / 2 {
        v[n - 1 - i] = Complex::new(x[2 * i + 1], 0.0);
    }
    fft_in_place_tw(v, fft_tw);
    // Post-twiddle by conj(quarter[k]) = e^{-iπk/2n}, real part only:
    // (a+bi)(c-si).re = a·c + b·s.
    for ((o, vk), q) in out.iter_mut().zip(v.iter()).zip(quarter.iter()) {
        *o = vk.re * q.re + vk.im * q.im;
    }
}

/// Cosine-series evaluation (DCT-III):
/// `y[n] = X[0]/2 + Σ_{k=1}^{N-1} X[k]·cos(πk(n+½)/N)`.
///
/// Together with [`dct2`]: `idct(dct2(x)) == (N/2)·x`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn idct(coeffs: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; coeffs.len()];
    idct_with(coeffs, &mut out, &mut DctScratch::new());
    out
}

/// [`idct`] into a caller-owned output slice with reusable scratch.
///
/// # Panics
///
/// Panics if the length is not a power of two or `out.len()` mismatches.
pub fn idct_with(coeffs: &[f64], out: &mut [f64], scratch: &mut DctScratch) {
    let n = coeffs.len();
    assert!(is_power_of_two(n), "IDCT length {n} is not a power of two");
    assert_eq!(out.len(), n, "output buffer size");
    if n == 1 {
        out[0] = coeffs[0] / 2.0;
        return;
    }
    // Rebuild the spectrum of the Makhoul-reordered sequence:
    // V[k] = e^{iπk/2N}·(C[k] − i·C[N−k]), with C[N] = 0.
    scratch.ensure_tables(n);
    let DctScratch {
        v, quarter, fft_tw, ..
    } = scratch;
    v.clear();
    v.resize(n, Complex::ZERO);
    v[0] = Complex::new(coeffs[0], 0.0);
    for k in 1..n {
        let c_k = coeffs[k];
        let c_nk = coeffs[n - k];
        v[k] = quarter[k] * Complex::new(c_k, -c_nk);
    }
    ifft_unnormalized_in_place_tw(v, fft_tw);
    // The unnormalized inverse yields N·v; the exact inverse of dct2 is
    // x[n] = (2/N)(C[0]/2 + Σ …), so the series value is (N/2)·x = v/2.
    let half = n.div_ceil(2);
    for i in 0..half {
        out[2 * i] = v[i].re / 2.0;
    }
    for i in 0..n / 2 {
        out[2 * i + 1] = v[n - 1 - i].re / 2.0;
    }
}

/// Shifted sine-series evaluation:
/// `y[n] = Σ_{k=0}^{N-1} X[k]·sin(πk(n+½)/N)` (the `k = 0` term vanishes).
///
/// Uses the identity `sin(πk(n+½)/N) = (−1)ⁿ·cos(π(N−k)(n+½)/N)`, reducing
/// to an [`idct`] on the index-reversed coefficients.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn idxst(coeffs: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; coeffs.len()];
    idxst_with(coeffs, &mut out, &mut DctScratch::new());
    out
}

/// [`idxst`] into a caller-owned output slice with reusable scratch.
///
/// # Panics
///
/// Panics if the length is not a power of two or `out.len()` mismatches.
pub fn idxst_with(coeffs: &[f64], out: &mut [f64], scratch: &mut DctScratch) {
    let n = coeffs.len();
    assert!(is_power_of_two(n), "IDXST length {n} is not a power of two");
    assert_eq!(out.len(), n, "output buffer size");
    let mut flipped = std::mem::take(&mut scratch.tmp);
    flipped.clear();
    flipped.resize(n, 0.0);
    for k in 1..n {
        flipped[k] = coeffs[n - k];
    }
    idct_with(&flipped, out, scratch);
    scratch.tmp = flipped;
    for (i, v) in out.iter_mut().enumerate() {
        if i % 2 == 1 {
            *v = -*v;
        }
    }
}

/// 2-D DCT-II of a row-major `nx × ny` grid:
/// `A[u,v] = Σ_{n,m} x[n,m]·cos(πu(n+½)/nx)·cos(πv(m+½)/ny)`,
/// returned row-major with `u` along x.
///
/// # Panics
///
/// Panics if either dimension is not a power of two or the buffer size is
/// inconsistent.
pub fn dct2_2d(data: &[f64], nx: usize, ny: usize) -> Vec<f64> {
    dct2_2d_with(data, nx, ny, Pool::global())
}

/// [`dct2_2d`] on an explicit pool. Rows and columns are independent
/// 1-D transforms written to disjoint output windows, so the result is
/// bit-identical for any thread count.
pub fn dct2_2d_with(data: &[f64], nx: usize, ny: usize, pool: Pool) -> Vec<f64> {
    assert_eq!(data.len(), nx * ny);
    // Row pass: transform each row into its own window.
    let mut rows = vec![0.0; nx * ny];
    let row_chunk = chunk_len(ny, 32, 4);
    pool.for_chunks_mut(
        &mut rows,
        row_chunk * nx,
        DctScratch::new,
        |scratch, _ci, offset, window| {
            for (r, out_row) in window.chunks_mut(nx).enumerate() {
                let iy = offset / nx + r;
                dct2_with(&data[iy * nx..(iy + 1) * nx], out_row, scratch);
            }
        },
    );
    // Transpose once (cache-blocked), transform contiguous columns,
    // transpose back. The former per-column strided gather walked the
    // whole `rows` buffer once per column.
    let mut rowst = vec![0.0; nx * ny];
    transpose_tiled(&rows, nx, ny, &mut rowst);
    let mut cols = vec![0.0; nx * ny];
    let col_chunk = chunk_len(nx, 32, 4);
    pool.for_chunks_mut(
        &mut cols,
        col_chunk * ny,
        DctScratch::new,
        |scratch, _ci, offset, window| {
            for (c, out_col) in window.chunks_mut(ny).enumerate() {
                let u = offset / ny + c;
                dct2_with(&rowst[u * ny..(u + 1) * ny], out_col, scratch);
            }
        },
    );
    let mut out = vec![0.0; nx * ny];
    transpose_tiled(&cols, ny, nx, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dct2(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                x.iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        v * (std::f64::consts::PI * k as f64 * (i as f64 + 0.5) / n as f64).cos()
                    })
                    .sum()
            })
            .collect()
    }

    fn naive_idct(c: &[f64]) -> Vec<f64> {
        let n = c.len();
        (0..n)
            .map(|i| {
                c[0] / 2.0
                    + (1..n)
                        .map(|k| {
                            c[k] * (std::f64::consts::PI * k as f64 * (i as f64 + 0.5) / n as f64)
                                .cos()
                        })
                        .sum::<f64>()
            })
            .collect()
    }

    fn naive_idxst(c: &[f64]) -> Vec<f64> {
        let n = c.len();
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|k| {
                        c[k] * (std::f64::consts::PI * k as f64 * (i as f64 + 0.5) / n as f64).sin()
                    })
                    .sum()
            })
            .collect()
    }

    fn test_vec(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) * 0.7 + (i as f64 * 0.31).sin())
            .collect()
    }

    #[test]
    fn dct2_matches_naive() {
        for n in [2usize, 4, 8, 32] {
            let x = test_vec(n);
            let fast = dct2(&x);
            let slow = naive_dct2(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn idct_matches_naive() {
        for n in [2usize, 4, 16] {
            let c = test_vec(n);
            let fast = idct(&c);
            let slow = naive_idct(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn idxst_matches_naive() {
        for n in [2usize, 4, 8, 64] {
            let c = test_vec(n);
            let fast = idxst(&c);
            let slow = naive_idxst(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn roundtrip_scaling() {
        let x = test_vec(16);
        let y = idct(&dct2(&x));
        for (a, b) in y.iter().zip(&x) {
            assert!((a - b * 8.0).abs() < 1e-9, "{a} vs {}", b * 8.0);
        }
    }

    #[test]
    fn length_one() {
        assert_eq!(dct2(&[5.0]), vec![5.0]);
        assert_eq!(idct(&[5.0]), vec![2.5]);
    }

    #[test]
    fn dct2_2d_matches_naive() {
        let nx = 4;
        let ny = 8;
        let data = test_vec(nx * ny);
        let fast = dct2_2d(&data, nx, ny);
        for u in 0..nx {
            for v in 0..ny {
                let mut acc = 0.0;
                for n in 0..nx {
                    for m in 0..ny {
                        acc += data[m * nx + n]
                            * (std::f64::consts::PI * u as f64 * (n as f64 + 0.5) / nx as f64)
                                .cos()
                            * (std::f64::consts::PI * v as f64 * (m as f64 + 0.5) / ny as f64)
                                .cos();
                    }
                }
                assert!(
                    (fast[v * nx + u] - acc).abs() < 1e-8,
                    "u={u} v={v}: {} vs {acc}",
                    fast[v * nx + u]
                );
            }
        }
    }

    #[test]
    fn dct_of_constant_concentrates_at_dc() {
        let x = vec![3.0; 16];
        let c = dct2(&x);
        assert!((c[0] - 48.0).abs() < 1e-9);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-9);
        }
    }
}
