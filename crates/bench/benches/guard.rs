//! rdp-guard overhead micro-benchmark: one Nesterov GP step on a
//! 20k-cell design with the numerical-health sentinels enabled (the
//! default [`HealthPolicy`]) against the same step with monitoring
//! disabled. The sentinels are O(n) scans over quantities the step
//! already produced, so the guarded step must stay within 2 % of the
//! unguarded one — `BENCH_guard.json` records both.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{GpSession, HealthPolicy, PlacerConfig, StepExtras};
use rdp_gen::{generate, GenParams};

fn design_20k() -> rdp_db::Design {
    generate(
        "bench-guard",
        &GenParams {
            num_cells: 20_000,
            num_macros: 4,
            macro_fraction: 0.12,
            utilization: 0.6,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 77,
            ..GenParams::default()
        },
    )
}

fn guard(c: &mut BenchHarness) {
    c.bench_function("gp_step_20k_guarded", |b| {
        let mut design = design_20k();
        let mut session = GpSession::new(&mut design, PlacerConfig::default());
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });

    c.bench_function("gp_step_20k_unguarded", |b| {
        let mut design = design_20k();
        let mut cfg = PlacerConfig::default();
        cfg.health = HealthPolicy::disabled();
        let mut session = GpSession::new(&mut design, cfg);
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });
}

fn main() {
    let mut harness = BenchHarness::new("guard").sample_size(20);
    guard(&mut harness);
    harness.finish();
}
