//! rdp-guard overhead micro-benchmark: one Nesterov GP step on a
//! 20k-cell design with the numerical-health sentinels enabled (the
//! default [`HealthPolicy`]) against the same step with monitoring
//! disabled. The sentinels are O(n) scans over quantities the step
//! already produced, so the guarded step must stay within 2 % of the
//! unguarded one — `BENCH_guard.json` records both.
//!
//! With `RDP_SERVE_BENCH=1` (or `RDP_SERVE_ASSERT=1`) the suite also
//! measures the **service overhead**: the same 5k-cell placement job
//! run submit-to-result through a live `rdp serve` instance against the
//! direct in-process flow. The service path adds one durable job record
//! per state transition, one checkpoint write per routability
//! iteration, and two protocol roundtrips — all O(1)-per-iteration
//! against a multi-second flow, so it must stay within 5 % of the
//! direct run (`RDP_SERVE_ASSERT=1` turns the budget into a hard
//! failure; CI does). A second service gate hammers the `stats`
//! telemetry endpoint every ~10 ms for a served job's whole lifetime:
//! scrapes are read-side snapshots, so the scraped run must stay
//! within 2 % of the quiet one. These benchmarks run full flows, so
//! they are env-gated and excluded from the per-commit regression
//! baseline.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{GpSession, HealthPolicy, PlacerConfig, StepExtras};
use rdp_gen::{generate, GenParams};
use rdp_serve::worker::reference_run;
use rdp_serve::{Client, JobSpec, ServeConfig, Server};

fn design_20k() -> rdp_db::Design {
    generate(
        "bench-guard",
        &GenParams {
            num_cells: 20_000,
            num_macros: 4,
            macro_fraction: 0.12,
            utilization: 0.6,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 77,
            ..GenParams::default()
        },
    )
}

fn guard(c: &mut BenchHarness) {
    c.bench_function("gp_step_20k_guarded", |b| {
        let mut design = design_20k();
        let mut session = GpSession::new(&mut design, PlacerConfig::default());
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });

    c.bench_function("gp_step_20k_unguarded", |b| {
        let mut design = design_20k();
        let mut cfg = PlacerConfig::default();
        cfg.health = HealthPolicy::disabled();
        let mut session = GpSession::new(&mut design, cfg);
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });
}

/// The serve smoke/overhead design: 5k cells, written to disk as
/// Bookshelf so the served job and the direct run parse the identical
/// input (the job-record path includes input resolution).
fn serve_spec(dir: &std::path::Path) -> JobSpec {
    let design = generate(
        "bench_serve_5k",
        &GenParams {
            num_cells: 5_000,
            num_macros: 2,
            macro_fraction: 0.12,
            utilization: 0.88,
            congestion_margin: 0.72,
            rail_pitch: 1.0,
            seed: 901,
            ..GenParams::default()
        },
    );
    rdp_parse::save_bookshelf(&design, dir, "bench_serve_5k").expect("write bookshelf input");
    JobSpec {
        input: format!("bookshelf:{}:bench_serve_5k", dir.display()),
        preset: "ours".into(),
        fast: false,
        gp_max_iters: Some(900),
        max_route_iters: Some(4),
        gp_iters_per_route: Some(80),
        ..JobSpec::default()
    }
}

/// Measured overhead of the median direct/served pair:
/// `(overhead_fraction, direct_seconds, served_seconds)`.
struct ServeOverhead {
    overhead: f64,
    direct_s: f64,
    served_s: f64,
}

fn serve_overhead(c: &mut BenchHarness, root: &std::path::Path) -> (ServeOverhead, StatsOverhead) {
    let spec = serve_spec(root);

    let server = Server::start(ServeConfig {
        dir: root.join("store"),
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let client = Client::new(server.local_addr().to_string());

    c.bench_function("direct_place_5k", |b| {
        b.iter(|| {
            let (res, _) = reference_run(&spec).expect("direct flow");
            black_box(res.hpwl)
        })
    });
    c.bench_function("serve_submit_to_result_5k", |b| {
        b.iter(|| {
            let id = client.submit(&spec).expect("submit");
            let out = client.wait(id, 5, 600_000).expect("result");
            black_box(out.hpwl)
        })
    });

    // The gate itself runs direct and served back-to-back in pairs so
    // slow machine drift (thermals, background load) cancels out of the
    // ratio, and gates on the median pair — robust against one leg of
    // one pair catching a noise spike in either direction. One transient
    // system stall (a writeback flush stalling the served leg's fsyncs,
    // say) can still inflate a whole pair set on a single-core box, so a
    // failing median is re-measured once before it counts: a genuine
    // service regression reproduces; a stall does not.
    let mut gate = median_pair(&client, &spec);
    if gate.overhead >= 0.05 {
        println!(
            "service overhead: median pair {:+.2}% over budget — re-measuring once",
            gate.overhead * 100.0
        );
        gate = median_pair(&client, &spec);
    }
    // Same re-measure-once policy for the stats-scrape gate: a genuine
    // observability regression reproduces; a one-off stall does not.
    let mut stats_gate = stats_scrape_overhead(&client, &spec);
    if stats_gate.overhead >= 0.02 {
        println!(
            "stats-scrape overhead: median pair {:+.2}% over budget — re-measuring once",
            stats_gate.overhead * 100.0
        );
        stats_gate = stats_scrape_overhead(&client, &spec);
    }
    server.shutdown().expect("serve shutdown");
    (gate, stats_gate)
}

/// One served submit-to-result leg, timed (no bulk positions).
fn timed_served(client: &Client, spec: &JobSpec) -> f64 {
    let t = std::time::Instant::now();
    let id = client.submit(spec).expect("submit");
    let out = loop {
        match client.result_wait(id, false, 10_000) {
            Err(e) if matches!(e, rdp_core::RdpError::Busy { .. }) => continue,
            other => break other.expect("served result"),
        }
    };
    black_box(out.hpwl);
    t.elapsed().as_secs_f64()
}

/// Median of three interleaved direct/served pairs. The served leg
/// long-polls without bulk positions: the QoR result is the
/// submit-to-result deliverable; position transfer is a separate
/// opt-in fetch.
fn median_pair(client: &Client, spec: &JobSpec) -> ServeOverhead {
    let mut pairs: Vec<ServeOverhead> = Vec::new();
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let (res, _) = reference_run(spec).expect("direct flow");
        black_box(res.hpwl);
        let direct_s = t.elapsed().as_secs_f64();

        let served_s = timed_served(client, spec);

        pairs.push(ServeOverhead {
            overhead: served_s / direct_s - 1.0,
            direct_s,
            served_s,
        });
    }
    pairs.sort_by(|a, b| a.overhead.total_cmp(&b.overhead));
    pairs.swap_remove(pairs.len() / 2)
}

/// Measured cost of scraping `stats` ~100×/s for a served job's whole
/// lifetime: `(overhead_fraction, quiet_seconds, scraped_seconds)`.
struct StatsOverhead {
    overhead: f64,
    quiet_s: f64,
    scraped_s: f64,
}

/// Median of three interleaved quiet/scraped served pairs. The scraped
/// leg runs a hammer thread hitting the `stats` endpoint every ~10 ms —
/// each hit snapshots the lifetime metrics and every live job's
/// progress — while the same job spec runs submit-to-result. Stats
/// reads are snapshot-only (no worker-side synchronization beyond two
/// short mutex holds), so the scraped leg must stay within 2 % of the
/// quiet one.
fn stats_scrape_overhead(client: &Client, spec: &JobSpec) -> StatsOverhead {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let mut pairs: Vec<StatsOverhead> = Vec::new();
    for _ in 0..3 {
        let quiet_s = timed_served(client, spec);

        let stop = Arc::new(AtomicBool::new(false));
        let hammer = {
            let stop = Arc::clone(&stop);
            let client = client.clone();
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (_, summary) = client.stats().expect("stats under load");
                    black_box(summary.counter_total);
                    scrapes += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                scrapes
            })
        };
        let scraped_s = timed_served(client, spec);
        stop.store(true, Ordering::Relaxed);
        let scrapes = hammer.join().expect("stats hammer");
        assert!(scrapes > 0, "the hammer must actually have scraped");

        pairs.push(StatsOverhead {
            overhead: scraped_s / quiet_s - 1.0,
            quiet_s,
            scraped_s,
        });
    }
    pairs.sort_by(|a, b| a.overhead.total_cmp(&b.overhead));
    pairs.swap_remove(pairs.len() / 2)
}

fn main() {
    let mut harness = BenchHarness::new("guard").sample_size(20);
    guard(&mut harness);

    let serve_assert = std::env::var("RDP_SERVE_ASSERT").as_deref() == Ok("1");
    let serve_bench =
        serve_assert || std::env::var("RDP_SERVE_BENCH").as_deref() == Ok("1") || harness.test_mode;
    let root = std::env::temp_dir().join(format!("rdp-bench-serve-{}", std::process::id()));
    let mut gate = None;
    if serve_bench {
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("bench scratch dir");
        // Full flows per iteration: a few samples keep the wall-clock in
        // seconds (these two benches are informational; the gate below
        // measures its own interleaved pairs).
        harness.samples = harness.samples.min(3);
        gate = Some(serve_overhead(&mut harness, &root));
    }
    harness.finish();
    if serve_bench {
        let _ = std::fs::remove_dir_all(&root);
    }

    if let Some((gate, stats_gate)) = gate {
        println!(
            "service overhead: {:+.2}% (submit-to-result {:.0} ms vs direct {:.0} ms, median of 3 interleaved pairs)",
            gate.overhead * 100.0,
            gate.served_s * 1e3,
            gate.direct_s * 1e3,
        );
        println!(
            "stats-scrape overhead: {:+.2}% (scraped {:.0} ms vs quiet {:.0} ms, median of 3 interleaved pairs)",
            stats_gate.overhead * 100.0,
            stats_gate.scraped_s * 1e3,
            stats_gate.quiet_s * 1e3,
        );
        if serve_assert {
            assert!(
                gate.overhead < 0.05,
                "service overhead {:.2}% exceeds the 5% budget",
                gate.overhead * 100.0
            );
            println!("service overhead budget: PASS (< 5%)");
            assert!(
                stats_gate.overhead < 0.02,
                "stats-scrape overhead {:.2}% exceeds the 2% budget",
                stats_gate.overhead * 100.0
            );
            println!("stats-scrape overhead budget: PASS (< 2%)");
        }
    }
}
