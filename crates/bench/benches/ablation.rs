//! rdp-testkit benchmarks of the per-iteration cost of each routability
//! technique (the runtime side of the Table II ablation): inflation
//! policy updates, the DPA density map, net-moving gradients with and
//! without Z-candidates, and the λ₂ computation.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{
    congestion_gradients, lambda2, CongestionField, DpaConfig, InflationBounds, InflationPolicy,
    InflationState, NetMoveConfig, PgDensity,
};
use rdp_gen::{generate, GenParams};
use rdp_route::GlobalRouter;

fn ablation(c: &mut BenchHarness) {
    let design = generate(
        "bench-abl",
        &GenParams {
            num_cells: 2000,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.65,
            congestion_margin: 0.8,
            rail_pitch: 1.0,
            seed: 99,
            ..GenParams::default()
        },
    );
    let route = GlobalRouter::default().route(&design);
    let field = CongestionField::from_route(&design, &route);

    // Inflation policies (MCI vs the two baselines).
    for (name, policy) in [
        (
            "inflation_momentum",
            InflationPolicy::Momentum { alpha: 0.4 },
        ),
        (
            "inflation_monotone",
            InflationPolicy::Monotone { beta: 0.6 },
        ),
        (
            "inflation_present_only",
            InflationPolicy::PresentOnly { beta: 1.0 },
        ),
    ] {
        c.bench_function(name, |b| {
            let mut st =
                InflationState::new(design.num_cells(), policy, InflationBounds::default());
            b.iter(|| {
                st.update(&design, &field);
                black_box(st.ratios()[0])
            })
        });
    }

    // DPA: rail selection (once) + dynamic density map per iteration.
    let grid = design.gcell_grid();
    c.bench_function("dpa_rail_selection", |b| {
        b.iter(|| {
            black_box(
                PgDensity::new(&design, &grid, &DpaConfig::default())
                    .selected_rails()
                    .len(),
            )
        })
    });
    let pg = PgDensity::new(&design, &grid, &DpaConfig::default());
    c.bench_function("dpa_dynamic_density_map", |b| {
        b.iter(|| black_box(pg.density_map(Some(&field)).sum()))
    });

    // Net moving: multi-pin threshold ablation (0.7 per the paper vs 0 =
    // every multi-pin cell in any congestion).
    for (name, threshold) in [("netmove_thresh_paper", 0.7), ("netmove_thresh_zero", 0.0)] {
        let cfg = NetMoveConfig {
            multi_pin_threshold: threshold,
            ..NetMoveConfig::default()
        };
        c.bench_function(name, |b| {
            b.iter(|| black_box(congestion_gradients(&design, &field, &cfg).multi_pin_cells))
        });
    }

    // λ₂ (Eq. 10).
    let grads = congestion_gradients(&design, &field, &NetMoveConfig::default());
    c.bench_function("lambda2_eq10", |b| {
        b.iter(|| black_box(lambda2(&design, &field, &grads)))
    });
}

fn main() {
    let mut harness = BenchHarness::new("ablation").sample_size(20);
    ablation(&mut harness);
    harness.finish();
}
