//! rdp-testkit micro-benchmarks of the numerical kernels: FFT, DCT,
//! spectral Poisson solve, WA wirelength gradient, density map, net
//! decomposition, and pattern routing.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{congestion_gradients, CongestionField, DensityModel, NetMoveConfig, WaModel};
use rdp_db::Point;
use rdp_gen::{generate, GenParams};
use rdp_poisson::{dct2, fft_in_place, Complex, PoissonSolver};
use rdp_route::{rudy_map, GlobalRouter};

fn bench_design() -> rdp_db::Design {
    generate(
        "bench",
        &GenParams {
            num_cells: 2000,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.65,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 42,
            ..GenParams::default()
        },
    )
}

fn kernels(c: &mut BenchHarness) {
    // FFT 1024.
    let signal: Vec<Complex> = (0..1024)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    c.bench_function("fft_1024", |b| {
        b.iter(|| {
            let mut buf = signal.clone();
            fft_in_place(&mut buf);
            black_box(buf[0].re)
        })
    });

    // DCT-II 1024.
    let real: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.11).cos()).collect();
    c.bench_function("dct2_1024", |b| {
        b.iter(|| black_box(dct2(black_box(&real))[3]))
    });

    // Poisson solves.
    for n in [64usize, 128] {
        let solver = PoissonSolver::new(n, n, 100.0, 100.0);
        let rho: Vec<f64> = (0..n * n).map(|i| ((i * 31) % 17) as f64).collect();
        c.bench_function(&format!("poisson_solve_{n}x{n}"), |b| {
            b.iter(|| black_box(solver.solve(black_box(&rho)).psi[0]))
        });
    }

    let design = bench_design();

    // WA wirelength gradient.
    let wa = WaModel::new(2.0);
    c.bench_function("wa_gradient_2k_cells", |b| {
        b.iter(|| {
            let mut grad = vec![Point::default(); design.num_cells()];
            wa.accumulate_gradient(&design, &mut grad);
            black_box(grad[0].x)
        })
    });

    // Density map + field.
    let model = DensityModel::new(&design);
    c.bench_function("density_field_2k_cells", |b| {
        b.iter(|| black_box(model.compute(&design, None, None, 0.9).penalty))
    });

    // Global routing.
    let router = GlobalRouter::default();
    c.bench_function("route_2k_cells", |b| {
        b.iter(|| black_box(router.route(&design).wirelength))
    });

    // RUDY baseline estimator.
    let grid = design.gcell_grid();
    c.bench_function("rudy_2k_cells", |b| {
        b.iter(|| black_box(rudy_map(&design, &grid).sum()))
    });

    // Net-moving congestion gradients (Algorithms 1–2).
    let route = router.route(&design);
    let field = CongestionField::from_route(&design, &route);
    c.bench_function("netmove_gradients_2k_cells", |b| {
        b.iter(|| {
            black_box(
                congestion_gradients(&design, &field, &NetMoveConfig::default()).virtual_cells,
            )
        })
    });
}

fn main() {
    let mut harness = BenchHarness::new("kernels").sample_size(20);
    kernels(&mut harness);
    harness.finish();
}
