//! rdp-testkit micro-benchmarks of the numerical kernels: FFT, DCT,
//! spectral Poisson solve, WA wirelength gradient, density map, net
//! decomposition, and pattern routing.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{
    congestion_gradients, CongestionField, DensityModel, NetMoveConfig, WaModel, WaScratch,
};
use rdp_db::Point;
use rdp_gen::{generate, GenParams};
use rdp_par::Pool;
use rdp_poisson::{dct2, fft_in_place, Complex, PoissonSolver};
use rdp_route::{rudy_map, rudy_map_with, GlobalRouter, IncrementalConfig, IncrementalRouter};

fn bench_design() -> rdp_db::Design {
    generate(
        "bench",
        &GenParams {
            num_cells: 2000,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.65,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 42,
            ..GenParams::default()
        },
    )
}

/// Larger design for the serial-vs-parallel comparisons, where the
/// per-chunk work is big enough for threading to pay off.
fn large_design() -> rdp_db::Design {
    generate(
        "bench_large",
        &GenParams {
            num_cells: 20_000,
            num_macros: 4,
            macro_fraction: 0.12,
            utilization: 0.65,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 43,
            ..GenParams::default()
        },
    )
}

/// 200k-cell tier: an order of magnitude past the parallel tier, sized so
/// cache-blocking and lane vectorization dominate rather than threading
/// overheads. Only the per-iteration placement kernels run here — the
/// router tier stays at 20k (see `route_20k_*`).
fn huge_design() -> rdp_db::Design {
    generate(
        "bench_huge",
        &GenParams {
            num_cells: 200_000,
            num_macros: 8,
            macro_fraction: 0.10,
            utilization: 0.65,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 47,
            ..GenParams::default()
        },
    )
}

fn kernels(c: &mut BenchHarness) {
    // FFT 1024.
    let signal: Vec<Complex> = (0..1024)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    c.bench_function("fft_1024", |b| {
        b.iter(|| {
            let mut buf = signal.clone();
            fft_in_place(&mut buf);
            black_box(buf[0].re)
        })
    });

    // DCT-II 1024.
    let real: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.11).cos()).collect();
    c.bench_function("dct2_1024", |b| {
        b.iter(|| black_box(dct2(black_box(&real))[3]))
    });

    // Poisson solves.
    for n in [64usize, 128] {
        let solver = PoissonSolver::new(n, n, 100.0, 100.0);
        let rho: Vec<f64> = (0..n * n).map(|i| ((i * 31) % 17) as f64).collect();
        c.bench_function(&format!("poisson_solve_{n}x{n}"), |b| {
            b.iter(|| black_box(solver.solve(black_box(&rho)).psi[0]))
        });
    }

    let design = bench_design();

    // WA wirelength gradient.
    let wa = WaModel::new(2.0);
    c.bench_function("wa_gradient_2k_cells", |b| {
        b.iter(|| {
            let mut grad = vec![Point::default(); design.num_cells()];
            wa.accumulate_gradient(&design, &mut grad);
            black_box(grad[0].x)
        })
    });

    // Density map + field.
    let model = DensityModel::new(&design);
    c.bench_function("density_field_2k_cells", |b| {
        b.iter(|| black_box(model.compute(&design, None, None, 0.9).penalty))
    });

    // Global routing.
    let router = GlobalRouter::default();
    c.bench_function("route_2k_cells", |b| {
        b.iter(|| black_box(router.route(&design).wirelength))
    });

    // RUDY baseline estimator.
    let grid = design.gcell_grid();
    c.bench_function("rudy_2k_cells", |b| {
        b.iter(|| black_box(rudy_map(&design, &grid).sum()))
    });

    // Net-moving congestion gradients (Algorithms 1–2).
    let route = router.route(&design);
    let field = CongestionField::from_route(&design, &route);
    c.bench_function("netmove_gradients_2k_cells", |b| {
        b.iter(|| {
            black_box(
                congestion_gradients(&design, &field, &NetMoveConfig::default()).virtual_cells,
            )
        })
    });
}

/// Serial (1-thread) vs parallel (4-thread) runs of the ported kernels
/// on the 20k-cell design. Both variants produce bit-identical results;
/// the comparison measures wall-clock only.
fn parallel_kernels(c: &mut BenchHarness) {
    let design = large_design();
    let pools = [("t1", Pool::serial()), ("t4", Pool::new(4))];

    let wa = WaModel::new(2.0);
    for (tag, pool) in pools {
        let mut grad = vec![Point::default(); design.num_cells()];
        let mut scratch = WaScratch::new();
        c.bench_function(&format!("wa_gradient_20k_cells_{tag}"), |b| {
            b.iter(|| {
                grad.iter_mut().for_each(|p| *p = Point::default());
                wa.accumulate_gradient_with(&design, &mut grad, pool, &mut scratch);
                black_box(grad[0].x)
            })
        });
    }

    let model = DensityModel::new(&design);
    for (tag, pool) in pools {
        c.bench_function(&format!("density_field_20k_cells_{tag}"), |b| {
            b.iter(|| black_box(model.compute_with(&design, None, None, 0.9, pool).penalty))
        });
    }

    let solver = PoissonSolver::new(256, 256, 100.0, 100.0);
    let rho: Vec<f64> = (0..256 * 256).map(|i| ((i * 31) % 17) as f64).collect();
    for (tag, pool) in pools {
        c.bench_function(&format!("poisson_solve_256x256_{tag}"), |b| {
            b.iter(|| black_box(solver.solve_with(black_box(&rho), pool).psi[0]))
        });
    }

    let grid = design.gcell_grid();
    for (tag, pool) in pools {
        c.bench_function(&format!("rudy_20k_cells_{tag}"), |b| {
            b.iter(|| black_box(rudy_map_with(&design, &grid, pool).sum()))
        });
    }

    // The router reads the global pool internally.
    let router = GlobalRouter::default();
    for (tag, threads) in [("t1", 1), ("t4", 4)] {
        rdp_par::set_global_threads(threads);
        c.bench_function(&format!("route_20k_cells_{tag}"), |b| {
            b.iter(|| black_box(router.route(&design).wirelength))
        });
    }
    rdp_par::set_global_threads(1);

    // Scalar pre-vectorization WA reference (libm exp, single
    // accumulator): the `wa_gradient_20k_cells_t1` / `_scalar_ref` pair
    // records the lane-kernel speedup trajectory in BENCH_kernels.json.
    {
        use rdp_core::wirelength::reference;
        use rdp_db::NetId;
        let gamma = 2.0;
        let mut grad = vec![Point::default(); design.num_cells()];
        let (mut xs, mut ys, mut gx, mut gy) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        c.bench_function("wa_gradient_20k_scalar_ref", |b| {
            b.iter(|| {
                grad.iter_mut().for_each(|p| *p = Point::default());
                for ni in 0..design.num_nets() {
                    let net = design.net(NetId::from_index(ni));
                    if net.pins.len() < 2 {
                        continue;
                    }
                    xs.clear();
                    ys.clear();
                    for &p in &net.pins {
                        let pos = design.pin_position(p);
                        xs.push(pos.x);
                        ys.push(pos.y);
                    }
                    gx.resize(xs.len(), 0.0);
                    gy.resize(ys.len(), 0.0);
                    reference::wa_grad_1d(&xs, gamma, &mut gx);
                    reference::wa_grad_1d(&ys, gamma, &mut gy);
                    for (k, &pid) in net.pins.iter().enumerate() {
                        let ci = design.pin(pid).cell.index();
                        grad[ci].x += net.weight * gx[k];
                        grad[ci].y += net.weight * gy[k];
                    }
                }
                black_box(grad[0].x)
            })
        });
    }
}

/// Incremental rip-up-and-reroute on the 20k design: a full route warms
/// the retained state, then each sample flips the movable cells of one
/// die-corner quadrant-of-a-quadrant between two position sets and
/// re-routes only the dirtied nets. The movement is spatially clustered
/// (a local detailed-placement-style touch-up, the router's intended
/// incremental workload) — index-scattered movement would mark G-cells
/// across the whole grid and dirty nearly every net through the
/// effect-region test. Compare against `route_20k_cells_*` for the
/// incremental saving.
fn incremental_route(c: &mut BenchHarness) {
    for (tag, threads) in [("t1", 1), ("t4", 4)] {
        rdp_par::set_global_threads(threads);
        let mut design = large_design();
        let base: Vec<Point> = design.positions().to_vec();
        let die = design.die();
        let (cx, cy) = (
            die.lo.x + 0.25 * die.width(),
            die.lo.y + 0.25 * die.height(),
        );
        let mut shifted = base.clone();
        for (i, p) in shifted.iter_mut().enumerate() {
            if p.x >= cx || p.y >= cy || design.cell(rdp_db::CellId::from_index(i)).fixed {
                continue;
            }
            p.x = (p.x + 2.0).clamp(die.lo.x, die.hi.x);
            p.y = (p.y + 2.0).clamp(die.lo.y, die.hi.y);
        }
        let mut inc = IncrementalRouter::new(
            GlobalRouter::default(),
            IncrementalConfig {
                move_threshold: 0.5,
                resync_every: 0,
                drift_frac: f64::INFINITY,
            },
        );
        inc.route(&design);
        let mut flip = false;
        c.bench_function(&format!("route_20k_incremental_{tag}"), |b| {
            b.iter(|| {
                flip = !flip;
                design.set_positions(if flip { &shifted } else { &base });
                black_box(inc.route(&design).wirelength)
            })
        });
    }
    rdp_par::set_global_threads(1);
}

/// The 200k tier: per-iteration placement kernels only, 4 threads (the
/// realistic configuration at this scale; thread invariance is already
/// proven at 20k).
fn huge_kernels(c: &mut BenchHarness) {
    let design = huge_design();
    rdp_par::set_global_threads(4);
    let pool = Pool::new(4);

    let wa = WaModel::new(2.0);
    let mut grad = vec![Point::default(); design.num_cells()];
    let mut scratch = WaScratch::new();
    c.bench_function("wa_gradient_200k_cells_t4", |b| {
        b.iter(|| {
            grad.iter_mut().for_each(|p| *p = Point::default());
            wa.accumulate_gradient_with(&design, &mut grad, pool, &mut scratch);
            black_box(grad[0].x)
        })
    });

    let model = DensityModel::new(&design);
    c.bench_function("density_field_200k_cells_t4", |b| {
        b.iter(|| black_box(model.compute_with(&design, None, None, 0.9, pool).penalty))
    });

    let grid = design.gcell_grid();
    c.bench_function("rudy_200k_cells_t4", |b| {
        b.iter(|| black_box(rudy_map_with(&design, &grid, pool).sum()))
    });
    rdp_par::set_global_threads(1);
}

fn main() {
    let mut harness = BenchHarness::new("kernels").sample_size(20);
    kernels(&mut harness);
    parallel_kernels(&mut harness);
    incremental_route(&mut harness);
    huge_kernels(&mut harness);
    harness.finish();
}
