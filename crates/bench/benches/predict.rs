//! rdp-predict micro-benchmarks: the cost of the learned congestion
//! fast-path on a 5k-cell design. `predict_eval_5k` (feature extraction +
//! linear evaluation) is what a substituted iteration pays *instead of*
//! routing, so it must stay far below a router invocation for the
//! fast-path to be worth anything; `predict_fit_5k` is the per-real-route
//! RLS update added to every routed iteration. `BENCH_predict.json`
//! records both and `scripts/regress.sh` gates them.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_gen::{generate, GenParams};
use rdp_par::Pool;
use rdp_predict::{CongestionPredictor, FeatureExtractor, PredictConfig};
use rdp_route::{CapacityMaps, CapacityOptions, GlobalRouter};

fn design_5k() -> rdp_db::Design {
    generate(
        "bench-predict",
        &GenParams {
            num_cells: 5_000,
            num_macros: 2,
            macro_fraction: 0.12,
            utilization: 0.88,
            congestion_margin: 0.72,
            rail_pitch: 1.0,
            seed: 901,
            ..GenParams::default()
        },
    )
}

fn main() {
    let mut harness = BenchHarness::new("predict").sample_size(20);
    let design = design_5k();
    let caps = CapacityMaps::build(&design, &CapacityOptions::default());
    let fx = FeatureExtractor::new(&design, &caps);
    let pool = Pool::global();
    let route = GlobalRouter::default().route(&design);
    let charge = route.maps.charge_density();

    harness.bench_function("feature_extract_5k", |b| {
        b.iter(|| black_box(fx.extract(&design, Some(&charge), pool)))
    });

    harness.bench_function("predict_fit_5k", |b| {
        let feats = fx.extract(&design, None, pool);
        let mut p = CongestionPredictor::new(PredictConfig::default());
        b.iter(|| {
            p.observe(&feats, &charge, pool);
            black_box(p.fits())
        })
    });

    harness.bench_function("predict_eval_5k", |b| {
        let feats = fx.extract(&design, None, pool);
        let mut p = CongestionPredictor::new(PredictConfig::default());
        p.observe(&feats, &charge, pool);
        b.iter(|| {
            let pred = p.predict(&feats, fx.capacity(), pool).expect("fitted");
            black_box(pred.total_overflow)
        })
    });

    harness.finish();
}
