//! rdp-obs overhead micro-benchmark: one Nesterov GP step on a 20k-cell
//! design with tracing enabled (spans + per-step telemetry recorded into
//! the ring buffer) against the identical step with the collector
//! disabled. A span on the disabled path is one `Option::is_none` branch
//! and an enabled span is two monotonic reads plus a mutex push, so the
//! traced step must stay within 6 % of the untraced one —
//! `BENCH_obs.json` records both. Set `RDP_OBS_ASSERT=1` to turn the
//! budget into a hard failure (CI does). The budget is a fraction of
//! the step, so it moves when the step does: the kernel vectorization
//! that roughly halved the 20k GP step doubled the same absolute
//! tracing cost (~0.25 ms) as a percentage, hence 6 % now where the
//! pre-vectorization step fit in 3 %.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{GpSession, PlacerConfig, StepExtras};
use rdp_gen::{generate, GenParams};
use rdp_obs::Collector;

fn design_20k() -> rdp_db::Design {
    generate(
        "bench-obs",
        &GenParams {
            num_cells: 20_000,
            num_macros: 4,
            macro_fraction: 0.12,
            utilization: 0.6,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 77,
            ..GenParams::default()
        },
    )
}

fn obs(c: &mut BenchHarness) {
    c.bench_function("gp_step_20k_untraced", |b| {
        let mut design = design_20k();
        let mut session = GpSession::new(&mut design, PlacerConfig::default());
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });

    c.bench_function("gp_step_20k_traced", |b| {
        let mut design = design_20k();
        let mut session = GpSession::new(&mut design, PlacerConfig::default());
        session.set_obs(Collector::enabled());
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });
}

fn main() {
    let mut harness = BenchHarness::new("obs").sample_size(20);
    obs(&mut harness);
    let results = harness.finish();

    let min_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("bench ran")
    };
    let untraced = min_of("gp_step_20k_untraced");
    let traced = min_of("gp_step_20k_traced");
    let overhead = traced / untraced - 1.0;
    println!(
        "tracing overhead: {:+.2}% (traced {:.0} ns vs untraced {:.0} ns, min over samples)",
        overhead * 100.0,
        traced,
        untraced
    );
    if std::env::var("RDP_OBS_ASSERT").as_deref() == Ok("1") {
        assert!(
            overhead < 0.06,
            "tracing overhead {:.2}% exceeds the 6% budget",
            overhead * 100.0
        );
        println!("overhead budget: PASS (< 6%)");
    }
}
