//! rdp-testkit benchmarks of the placement stages: one Nesterov step, the
//! full wirelength-driven placement, legalization + detailed placement,
//! and the end-to-end routability flow on a small design.

use rdp_testkit::BenchHarness;
use std::hint::black_box;

use rdp_core::{
    run_flow, GlobalPlacer, GpSession, PlacerConfig, PlacerPreset, RoutabilityConfig, StepExtras,
};
use rdp_drc::{evaluate, EvalConfig};
use rdp_gen::{generate, GenParams};
use rdp_legal::{detailed_place, legalize, DetailedConfig, LegalizeConfig};

fn small_design() -> rdp_db::Design {
    generate(
        "bench-place",
        &GenParams {
            num_cells: 1000,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.6,
            congestion_margin: 0.85,
            rail_pitch: 1.0,
            seed: 77,
            ..GenParams::default()
        },
    )
}

fn placement(c: &mut BenchHarness) {
    // One Nesterov step of the analytical model.
    c.bench_function("gp_single_step_1k_cells", |b| {
        let mut design = small_design();
        let mut session = GpSession::new(&mut design, PlacerConfig::default());
        b.iter(|| {
            let r = session.step(&mut design, &StepExtras::default()).unwrap();
            black_box(r.overflow)
        })
    });

    // Full wirelength-driven placement.
    c.bench_function("global_place_1k_cells", |b| {
        b.iter(|| {
            let mut design = small_design();
            let stats = GlobalPlacer::default().place(&mut design).unwrap();
            black_box(stats.hpwl)
        })
    });

    // Legalization + detailed placement of a placed design.
    c.bench_function("legalize_and_dp_1k_cells", |b| {
        let mut placed = small_design();
        GlobalPlacer::default().place(&mut placed).unwrap();
        b.iter(|| {
            let mut d = placed.clone();
            legalize(&mut d, &LegalizeConfig::default());
            black_box(detailed_place(&mut d, &DetailedConfig::default()))
        })
    });

    // End-to-end routability flow (paper preset).
    c.bench_function("full_flow_ours_1k_cells", |b| {
        b.iter(|| {
            let mut design = small_design();
            let r = run_flow(&mut design, &RoutabilityConfig::preset(PlacerPreset::Ours)).unwrap();
            black_box(r.route_iterations)
        })
    });

    // Evaluation routing + DRV proxy.
    c.bench_function("evaluate_1k_cells", |b| {
        let mut placed = small_design();
        GlobalPlacer::default().place(&mut placed).unwrap();
        legalize(&mut placed, &LegalizeConfig::default());
        b.iter(|| black_box(evaluate(&placed, &EvalConfig::default()).drvs))
    });
}

fn main() {
    let mut harness = BenchHarness::new("placement").sample_size(10);
    placement(&mut harness);
    harness.finish();
}
