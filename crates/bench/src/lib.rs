//! # rdp-bench — experiment harnesses
//!
//! Binaries that regenerate every table and figure of the paper on the
//! synthetic suite, plus Criterion micro-benchmarks of the hot kernels:
//!
//! | target | artifact |
//! |---|---|
//! | `cargo run -p rdp-bench --release --bin table1` | Table I (20 designs × 3 placers) |
//! | `cargo run -p rdp-bench --release --bin table2` | Table II (ablation) |
//! | `cargo run -p rdp-bench --release --bin fig1`   | Fig. 1 (local vs global congestion) |
//! | `cargo run -p rdp-bench --release --bin fig2`   | Fig. 2 (flow walk-through) |
//! | `cargo run -p rdp-bench --release --bin fig3`   | Fig. 3 (virtual-cell geometry) |
//! | `cargo run -p rdp-bench --release --bin fig4`   | Fig. 4 (PG-rail selection) |
//! | `cargo bench -p rdp-bench` | kernel / placement / ablation micro-benches |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};
use rdp_db::Design;
use rdp_drc::{evaluate, EvalConfig, EvalReport};
use rdp_gen::SuiteEntry;
use rdp_legal::{detailed_place, legalize, DetailedConfig, LegalizeConfig};

/// Generates one suite design and pins its routing capacity so that the
/// wirelength-driven baseline exhibits the calibrated congestion stress.
///
/// The generator's own capacity calibration anchors on its compact tile
/// placement, which over-estimates routed demand; re-anchoring on an
/// actual Xplace placement makes `congestion_margin` mean exactly "this
/// fraction of G-cells stays under capacity for the baseline placer" —
/// the per-design technology stress of Table I.
pub fn prepare_design(entry: &SuiteEntry) -> Design {
    let mut design = rdp_gen::generate(entry.name, &entry.params);
    let mut probe = design.clone();
    run_flow(&mut probe, &RoutabilityConfig::preset(PlacerPreset::Xplace))
        .expect("calibration probe placement diverged");
    legalize(&mut probe, &LegalizeConfig::default());
    detailed_place(&mut probe, &DetailedConfig::default());
    let spec = rdp_gen::calibrate_routing(&probe, entry.params.congestion_margin);
    design.set_routing(spec);
    design
}

/// One Table-I-style result row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowResult {
    /// Design name.
    pub design: String,
    /// Detailed-routing wirelength proxy (µm).
    pub drwl: f64,
    /// Via count.
    pub drvias: f64,
    /// DRV proxy.
    pub drvs: f64,
    /// Placement time (s).
    pub pt: f64,
    /// Routing time (s).
    pub rt: f64,
    /// Full evaluation breakdown.
    pub eval: EvalReport,
}

/// Runs the complete pipeline (place → legalize → detailed place →
/// evaluate) for one design under one flow configuration.
pub fn run_pipeline(
    design: &mut Design,
    cfg: &RoutabilityConfig,
    eval_cfg: &EvalConfig,
) -> RowResult {
    run_pipeline_obs(design, cfg, eval_cfg, &rdp_obs::Collector::disabled())
}

/// [`run_pipeline`] with every stage traced on `obs` (flow spans and
/// convergence series, legalization/detailed-placement spans, a
/// `drc_eval` span). Results are bitwise identical with tracing on or
/// off; the collector only records.
pub fn run_pipeline_obs(
    design: &mut Design,
    cfg: &RoutabilityConfig,
    eval_cfg: &EvalConfig,
    obs: &rdp_obs::Collector,
) -> RowResult {
    let mut ctrl = rdp_core::FlowControl::default();
    ctrl.obs = obs.clone();
    let flow = rdp_core::run_flow_with(design, cfg, ctrl).expect("flow diverged beyond recovery");
    // Routability-driven legalization/DP: preserve the inflation spacing
    // by legalizing with virtual (inflated) widths when the flow produced
    // ratios (the paper adopts Xplace-Route's routability-driven LG/DP).
    match virtual_widths(design, &flow) {
        Some(widths) => {
            rdp_legal::legalize_virtual_obs(design, &LegalizeConfig::default(), &widths, obs);
            rdp_legal::detailed_place_virtual_obs(design, &DetailedConfig::default(), &widths, obs);
        }
        None => {
            rdp_legal::legalize_obs(design, &LegalizeConfig::default(), obs);
            rdp_legal::detailed_place_obs(design, &DetailedConfig::default(), obs);
        }
    }
    let eval = {
        let _span = obs.span("drc_eval", "eval");
        evaluate(design, eval_cfg)
    };
    RowResult {
        design: design.name().to_string(),
        drwl: eval.drwl,
        drvias: eval.drvias,
        drvs: eval.drvs,
        pt: flow.place_seconds,
        rt: eval.route_seconds,
        eval,
    }
}

/// Virtual (inflated) widths for routability-preserving legalization, or
/// `None` when the flow ran without inflation.
pub fn virtual_widths(design: &Design, flow: &rdp_core::FlowReport) -> Option<Vec<f64>> {
    let ratios = flow.inflation_ratios.as_ref()?;
    Some(
        design
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| c.w * ratios[i].max(1.0).sqrt())
            .collect(),
    )
}

/// DRV counts below this level are measurement noise on the synthetic
/// suite; per-design DRV ratios floor both sides here so that a
/// 121-vs-3 design does not contribute a 40x outlier to the mean (the
/// paper's designs never approach zero DRVs, so it never faces this).
pub const DRV_NOISE_FLOOR: f64 = 10.0;

/// Per-metric mean ratios of `rows` against `baseline` rows (matched by
/// index): the "Avg. Ratio" line of the paper's tables. DRV ratios floor
/// both numerator and denominator at [`DRV_NOISE_FLOOR`].
pub fn mean_ratios(rows: &[RowResult], baseline: &[RowResult]) -> (f64, f64, f64) {
    assert_eq!(rows.len(), baseline.len());
    assert!(!rows.is_empty());
    let mut acc = (0.0, 0.0, 0.0);
    for (r, b) in rows.iter().zip(baseline) {
        acc.0 += r.drwl / b.drwl.max(1.0);
        acc.1 += r.drvias / b.drvias.max(1.0);
        acc.2 += r.drvs.max(DRV_NOISE_FLOOR) / b.drvs.max(DRV_NOISE_FLOOR);
    }
    let n = rows.len() as f64;
    (acc.0 / n, acc.1 / n, acc.2 / n)
}

/// Mean ratio of one extracted metric against a baseline, with a floor on
/// the denominator.
pub fn mean_ratio_by(
    rows: &[RowResult],
    baseline: &[RowResult],
    f: impl Fn(&RowResult) -> f64,
) -> f64 {
    assert_eq!(rows.len(), baseline.len());
    let mut acc = 0.0;
    for (r, b) in rows.iter().zip(baseline) {
        acc += f(r).max(1e-9) / f(b).max(1e-9);
    }
    acc / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, drwl: f64, vias: f64, drvs: f64) -> RowResult {
        RowResult {
            design: name.into(),
            drwl,
            drvias: vias,
            drvs,
            pt: 1.0,
            rt: 1.0,
            eval: EvalReport {
                drwl,
                drvias: vias,
                drvs,
                drv_overflow: drvs,
                drv_pin_access: 0.0,
                drv_rail: 0.0,
                route_seconds: 1.0,
                overflowed_gcells: 0,
                track_shorts: 0.0,
            },
        }
    }

    #[test]
    fn ratios_identity() {
        let rows = vec![row("a", 10.0, 5.0, 100.0), row("b", 20.0, 8.0, 50.0)];
        let (w, v, d) = mean_ratios(&rows, &rows);
        assert!((w - 1.0).abs() < 1e-12);
        assert!((v - 1.0).abs() < 1e-12);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_scale() {
        let ours = vec![row("a", 10.0, 5.0, 100.0)];
        let other = vec![row("a", 20.0, 5.0, 140.0)];
        let (w, _, d) = mean_ratios(&other, &ours);
        assert!((w - 2.0).abs() < 1e-12);
        assert!((d - 1.4).abs() < 1e-12);
    }

    #[test]
    fn zero_drvs_floored_at_noise_level() {
        let ours = vec![row("a", 10.0, 5.0, 0.0)];
        let other = vec![row("a", 10.0, 5.0, 3.0)];
        let (_, _, d) = mean_ratios(&other, &ours);
        // Both sides below the noise floor: ratio is 1, not 3/0.
        assert_eq!(d, 1.0);

        let other = vec![row("a", 10.0, 5.0, 100.0)];
        let (_, _, d) = mean_ratios(&other, &ours);
        assert_eq!(d, 10.0); // 100 / floor(0 → 10)
    }

    #[test]
    fn pt_ratio_by_extractor() {
        let a = vec![row("a", 1.0, 1.0, 1.0)];
        let mut b = a.clone();
        b[0].pt = 4.0;
        let r = mean_ratio_by(&b, &a, |r| r.pt);
        assert_eq!(r, 4.0);
    }
}
