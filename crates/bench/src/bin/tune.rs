//! Hyper-parameter sweep for the "Ours" preset (dev tool).

use rdp_bench::{prepare_design, run_pipeline};
use rdp_core::{PlacerPreset, RoutabilityConfig};
use rdp_drc::EvalConfig;

fn main() {
    let designs = ["edit_dist_a", "superblue11_a", "fft_b", "matrix_mult_b"];
    let variants: Vec<(&str, Box<dyn Fn() -> RoutabilityConfig>)> = vec![
        (
            "ours",
            Box::new(|| RoutabilityConfig::preset(PlacerPreset::Ours)),
        ),
        (
            "iters16",
            Box::new(|| RoutabilityConfig {
                max_route_iters: 16,
                ..RoutabilityConfig::preset(PlacerPreset::Ours)
            }),
        ),
        (
            "gp36",
            Box::new(|| RoutabilityConfig {
                gp_iters_per_route: 36,
                ..RoutabilityConfig::preset(PlacerPreset::Ours)
            }),
        ),
        (
            "l2x0.5",
            Box::new(|| RoutabilityConfig {
                lambda2_scale: 0.5,
                ..RoutabilityConfig::preset(PlacerPreset::Ours)
            }),
        ),
        (
            "l2x2",
            Box::new(|| RoutabilityConfig {
                lambda2_scale: 2.0,
                ..RoutabilityConfig::preset(PlacerPreset::Ours)
            }),
        ),
        (
            "pat3i16",
            Box::new(|| RoutabilityConfig {
                max_route_iters: 16,
                stop_patience: 3,
                ..RoutabilityConfig::preset(PlacerPreset::Ours)
            }),
        ),
    ];

    let eval_cfg = EvalConfig::default();
    for name in designs {
        let entry = rdp_gen::ispd2015_suite()
            .into_iter()
            .find(|e| e.name == name)
            .unwrap();
        let base = prepare_design(&entry);
        for (label, mk) in &variants {
            let mut d = base.clone();
            let row = run_pipeline(&mut d, &mk(), &eval_cfg);
            println!(
                "{:<15} {:<9} drvs {:>6.0} drwl {:>8.0} vias {:>7.0} pt {:>5.2}",
                name, label, row.drvs, row.drwl, row.drvias, row.pt
            );
        }
    }
}
