//! Calibration probe: per-preset DRV breakdown on selected designs (dev
//! tool used while tuning the flow; not part of the paper tables).

use rdp_core::{PlacerPreset, RoutabilityConfig};
use rdp_drc::EvalConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let designs: Vec<&str> = if args.is_empty() {
        vec!["fft_b", "des_perf_a", "matrix_mult_b"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "{:<16} {:<13} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "design", "placer", "DRWL", "vias", "DRVs", "ovfl", "pin", "rail", "PT/s"
    );
    for name in designs {
        let entry = rdp_gen::ispd2015_suite()
            .into_iter()
            .find(|e| e.name == name)
            .expect("design");
        let base = rdp_bench::prepare_design(&entry);
        for (label, preset) in [
            ("Xplace", PlacerPreset::Xplace),
            ("Xplace-Route", PlacerPreset::XplaceRoute),
            ("Ours", PlacerPreset::Ours),
        ] {
            let mut d = base.clone();
            let row = rdp_bench::run_pipeline(
                &mut d,
                &RoutabilityConfig::preset(preset),
                &EvalConfig::default(),
            );
            let e = row.eval;
            println!(
                "{:<16} {:<13} {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>9.0} {:>7.2}",
                name,
                label,
                e.drwl,
                e.drvias,
                e.drvs,
                e.drv_overflow,
                e.drv_pin_access,
                e.drv_rail,
                row.pt
            );
        }
    }
}
