//! Regenerates **Table I**: all 20 suite designs × {Xplace, Xplace-Route,
//! Ours}, reporting DRWL, #DRVias, #DRVs, placement time (PT) and routing
//! time (RT), plus the per-metric average ratios normalized to Ours.
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin table1            # all 20 designs
//! cargo run --release -p rdp-bench --bin table1 -- --designs fft_1,fft_2
//! cargo run --release -p rdp-bench --bin table1 -- --profile   # + stage time table
//! ```

use rdp_bench::{mean_ratio_by, mean_ratios, prepare_design, run_pipeline_obs, RowResult};
use rdp_core::{PlacerPreset, RoutabilityConfig};
use rdp_drc::EvalConfig;

const PRESETS: [(&str, PlacerPreset); 3] = [
    ("Xplace", PlacerPreset::Xplace),
    ("Xplace-Route", PlacerPreset::XplaceRoute),
    ("Ours", PlacerPreset::Ours),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let designs: Vec<String> = args
        .iter()
        .position(|a| a == "--designs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            rdp_gen::ispd2015_suite()
                .iter()
                .map(|e| e.name.to_string())
                .collect()
        });

    // --profile: trace every run into one collector and append the
    // aggregate per-stage time table after the Table I rows.
    let obs = if args.iter().any(|a| a == "--profile") {
        rdp_obs::Collector::enabled()
    } else {
        rdp_obs::Collector::disabled()
    };

    let eval_cfg = EvalConfig::default();
    let mut results: Vec<Vec<RowResult>> = vec![Vec::new(); PRESETS.len()];

    println!(
        "{:<16} | {:>10} {:>8} {:>7} {:>6} {:>6} | {:>10} {:>8} {:>7} {:>6} {:>6} | {:>10} {:>8} {:>7} {:>6} {:>6}",
        "Design",
        "DRWL/um", "#DRVias", "#DRVs", "PT/s", "RT/s",
        "DRWL/um", "#DRVias", "#DRVs", "PT/s", "RT/s",
        "DRWL/um", "#DRVias", "#DRVs", "PT/s", "RT/s"
    );
    println!(
        "{:<16} | {:^41} | {:^41} | {:^41}",
        "", "Xplace", "Xplace-Route", "Ours"
    );

    for name in &designs {
        let entry = rdp_gen::ispd2015_suite()
            .into_iter()
            .find(|e| e.name == name.as_str())
            .unwrap_or_else(|| panic!("unknown design `{name}`"));
        let base = prepare_design(&entry);
        let mut cells = String::new();
        for (pi, (_, preset)) in PRESETS.iter().enumerate() {
            let mut d = base.clone();
            let row =
                run_pipeline_obs(&mut d, &RoutabilityConfig::preset(*preset), &eval_cfg, &obs);
            cells.push_str(&format!(
                " | {:>10.0} {:>8.0} {:>7.0} {:>6.2} {:>6.2}",
                row.drwl, row.drvias, row.drvs, row.pt, row.rt
            ));
            results[pi].push(row);
        }
        println!("{name:<16}{cells}");
    }

    // Average ratios normalized to Ours (the paper's last row).
    let ours = results.last().expect("presets non-empty").clone();
    println!("{}", "-".repeat(16 + 3 * 44));
    let mut footer = format!("{:<16}", "Avg. Ratio");
    for rows in &results {
        let (w, v, d) = mean_ratios(rows, &ours);
        let pt = mean_ratio_by(rows, &ours, |r| r.pt);
        let rt = mean_ratio_by(rows, &ours, |r| r.rt);
        footer.push_str(&format!(
            " | {:>10.2} {:>8.2} {:>7.2} {:>6.2} {:>6.2}",
            w, v, d, pt, rt
        ));
    }
    println!("{footer}");
    println!(
        "\n(DRV ratios floor both sides at {} DRVs — measurement noise on the synthetic suite)",
        rdp_bench::DRV_NOISE_FLOOR
    );
    println!(
        "paper Table I avg ratios      |  DRWL 1.00  vias 1.00  DRVs 5.00 (Xplace)  |  1.00 / 0.99 / 1.40 (Xplace-Route)  |  1.00 / 1.00 / 1.00 (Ours)"
    );
    if obs.is_enabled() {
        println!("\nstage profile (all designs × presets aggregated):");
        print!("{}", rdp_obs::stage_table(&obs));
    }
}
