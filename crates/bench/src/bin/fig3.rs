//! Regenerates **Fig. 3**: the virtual-cell geometry of Algorithm 1 on a
//! crafted two-pin net crossing a congested stripe — prints the candidate
//! points (Eq. 7), the chosen virtual cell (Eq. 8), the field gradient
//! ∇C_cv, the oriented normal n̂, the projection ∇C⊥, and the final
//! lever-arm-weighted per-cell gradients (Eq. 9).
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin fig3
//! ```

use rdp_core::{two_pin_gradient, CongestionField, NetMoveConfig};
use rdp_db::{Cell, DesignBuilder, NetId, Point, Rect, RoutingSpec};
use rdp_route::GlobalRouter;

fn main() {
    // A congested horizontal stripe (the red region of Fig. 3) and one
    // diagonal probe net crossing it.
    let mut b = DesignBuilder::new("fig3", Rect::new(0.0, 0.0, 64.0, 64.0));
    let mut pairs = Vec::new();
    for i in 0..40 {
        let y = 28.0 + (i % 5) as f64;
        let a = b.add_cell(Cell::std(format!("a{i}"), 1.0, 2.0), Point::new(2.0, y));
        let c = b.add_cell(Cell::std(format!("b{i}"), 1.0, 2.0), Point::new(62.0, y));
        pairs.push((a, c));
    }
    for (i, (a, c)) in pairs.iter().enumerate() {
        b.add_net(
            format!("n{i}"),
            vec![(*a, Point::default()), (*c, Point::default())],
        );
    }
    let c1 = b.add_cell(Cell::std("c1", 1.0, 2.0), Point::new(14.0, 20.0));
    let c2 = b.add_cell(Cell::std("c2", 1.0, 2.0), Point::new(52.0, 44.0));
    b.add_net(
        "probe",
        vec![(c1, Point::default()), (c2, Point::default())],
    );
    b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
    let design = b.build().unwrap();

    let route = GlobalRouter::default().route(&design);
    let field = CongestionField::from_route(&design, &route);
    println!("congestion map (the red stripe):");
    println!("{}", field.cmap.ascii_heatmap(32));

    let probe = NetId::from_index(design.num_nets() - 1);
    let pins = &design.net(probe).pins;
    let p1 = design.pin_position(pins[0]);
    let p2 = design.pin_position(pins[1]);
    let grid = design.gcell_grid();

    // Eq. (6): candidate count.
    let k = (((p1.x - p2.x).abs() / grid.bin_w()).floor() as usize)
        .max(((p1.y - p2.y).abs() / grid.bin_h()).floor() as usize);
    println!("pins p1 = {p1}, p2 = {p2}; Eq. (6) gives k = {k} candidates");
    println!("{:>4} {:>22} {:>8}", "i", "candidate (Eq. 7)", "C (Eq. 3)");
    for i in 1..=k {
        let t = i as f64 / (k + 1) as f64;
        let cand = p1 + (p2 - p1).scale(t);
        println!(
            "{:>4} {:>22} {:>8.3}",
            i,
            format!("{cand}"),
            field.congestion_at(cand)
        );
    }

    let info = two_pin_gradient(&design, &field, &NetMoveConfig::default(), probe, 1.0)
        .expect("probe spans G-cells");
    println!("\nvirtual cell c_v (Eq. 8):    {}", info.pos);
    println!(
        "field gradient ∇C_cv:        ({:+.4}, {:+.4})",
        info.grad_v.x, info.grad_v.y
    );
    println!(
        "oriented unit normal n̂:      ({:+.4}, {:+.4})",
        info.normal.x, info.normal.y
    );
    println!(
        "projection ∇C⊥ = (∇C·n̂)n̂:    ({:+.4}, {:+.4})",
        info.proj.x, info.proj.y
    );
    let l = p1.distance(p2);
    let d1 = p1.distance(info.pos);
    let d2 = p2.distance(info.pos);
    println!("\nEq. (9) lever arms: L = {l:.2}, d1v = {d1:.2}, d2v = {d2:.2}");
    println!(
        "∇C_c1 = L/(2·d1v)·∇C⊥ = ({:+.4}, {:+.4})   |∇C_c1| = {:.4}",
        info.g1.x,
        info.g1.y,
        info.g1.norm()
    );
    println!(
        "∇C_c2 = L/(2·d2v)·∇C⊥ = ({:+.4}, {:+.4})   |∇C_c2| = {:.4}",
        info.g2.x,
        info.g2.y,
        info.g2.norm()
    );
    println!(
        "\n→ descent −∇C moves the whole net {} out of the stripe, the closer pin faster",
        if info.g1.y > 0.0 {
            "downward"
        } else {
            "upward"
        }
    );
}
