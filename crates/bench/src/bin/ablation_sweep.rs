//! Design-choice ablation sweeps (the A1 index entry of DESIGN.md):
//! hyper-parameters the paper fixes without exploration are swept here to
//! show the sensitivity of the method —
//!
//! * momentum coefficient α of Eq. (11) (paper: 0.4),
//! * the λ₂ scale on Eq. (10) (our preset: 0.5),
//! * the DPA mode (off / static / dynamic),
//! * the inflation policy family (none / present-only / monotone / momentum).
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin ablation_sweep [-- --designs a,b,c]
//! ```

use rdp_bench::{prepare_design, run_pipeline};
use rdp_core::{DcSource, DpaMode, InflationPolicy, PlacerPreset, RoutabilityConfig};
use rdp_drc::EvalConfig;

fn designs_from_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--designs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            vec![
                "fft_b".to_string(),
                "des_perf_a".to_string(),
                "edit_dist_a".to_string(),
            ]
        })
}

fn main() {
    let designs = designs_from_args();
    let eval_cfg = EvalConfig::default();
    let bases: Vec<_> = designs
        .iter()
        .map(|name| {
            let entry = rdp_gen::ispd2015_suite()
                .into_iter()
                .find(|e| e.name == name.as_str())
                .unwrap_or_else(|| panic!("unknown design `{name}`"));
            (name.clone(), prepare_design(&entry))
        })
        .collect();

    let run = |label: &str, cfg: &RoutabilityConfig| {
        let mut total_drvs = 0.0;
        let mut total_drwl = 0.0;
        for (_, base) in &bases {
            let mut d = base.clone();
            let row = run_pipeline(&mut d, cfg, &eval_cfg);
            total_drvs += row.drvs;
            total_drwl += row.drwl;
        }
        println!(
            "{label:<28} total DRVs {:>8.0}   total DRWL {:>10.0}",
            total_drvs, total_drwl
        );
    };

    println!("== momentum coefficient α (Eq. 11; paper = 0.4) ==");
    for alpha in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let cfg = RoutabilityConfig {
            inflation: InflationPolicy::Momentum { alpha },
            ..RoutabilityConfig::preset(PlacerPreset::Ours)
        };
        run(&format!("alpha = {alpha}"), &cfg);
    }

    println!("\n== λ₂ scale on Eq. (10) (preset = 0.5) ==");
    for scale in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let cfg = RoutabilityConfig {
            lambda2_scale: scale,
            ..RoutabilityConfig::preset(PlacerPreset::Ours)
        };
        run(&format!("lambda2_scale = {scale}"), &cfg);
    }

    println!("\n== DPA mode ==");
    for (label, dpa) in [
        ("dpa = off", None),
        ("dpa = static (Xplace-Route)", Some(DpaMode::Static)),
        ("dpa = dynamic (paper)", Some(DpaMode::Dynamic)),
    ] {
        let cfg = RoutabilityConfig {
            dpa,
            ..RoutabilityConfig::preset(PlacerPreset::Ours)
        };
        run(label, &cfg);
    }

    println!("\n== DC congestion source (router = paper, RUDY = Fig. 1(b) strawman) ==");
    for (label, src) in [
        ("dc source = router (paper)", DcSource::Router),
        ("dc source = RUDY", DcSource::Rudy),
    ] {
        let cfg = RoutabilityConfig {
            dc_source: src,
            ..RoutabilityConfig::preset(PlacerPreset::Ours)
        };
        run(label, &cfg);
    }

    println!("\n== inflation policy family ==");
    for (label, policy) in [
        ("inflation = none", InflationPolicy::None),
        (
            "inflation = present-only",
            InflationPolicy::PresentOnly { beta: 1.0 },
        ),
        (
            "inflation = monotone",
            InflationPolicy::Monotone { beta: 0.6 },
        ),
        (
            "inflation = momentum (paper)",
            InflationPolicy::Momentum { alpha: 0.4 },
        ),
    ] {
        let cfg = RoutabilityConfig {
            inflation: policy,
            ..RoutabilityConfig::preset(PlacerPreset::Ours)
        };
        run(label, &cfg);
    }
}
