//! Regenerates **Fig. 4**: PG-rail selection for density adjustment on
//! the `matrix_mult_a` design — all rails before selection (a), then the
//! surviving rail pieces after cutting by 10 %-expanded macro bounding
//! boxes and the 0.2×extent length filter (b).
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin fig4
//! ```

use rdp_core::{select_rails, DpaConfig};
use rdp_db::{Dir, Map2d};

fn main() {
    let design = rdp_gen::generate_named("matrix_mult_a").expect("suite design");
    let die = design.die();
    println!(
        "design `matrix_mult_a`: die {:.0}×{:.0} um, {} macros, {} PG rails (M2, vertical)",
        die.width(),
        die.height(),
        design.macros().count(),
        design.rails().len()
    );

    let cfg = DpaConfig::default();
    let selected = select_rails(&design, &cfg);
    let min_len = cfg.min_length_fraction * die.height();
    println!(
        "macro boxes expanded by {:.0}%; surviving pieces must be ≥ {:.1} um ({}% of die height)",
        cfg.macro_expand * 100.0,
        min_len,
        (cfg.min_length_fraction * 100.0) as u32
    );
    println!(
        "(a) rails before selection: {}   (b) selected pieces: {}\n",
        design.rails().len(),
        selected.len()
    );

    // ASCII rendering: macros as '#', original rails as '.', selected
    // pieces as '|'.
    let (w, h) = (64usize, 32usize);
    let mut canvas = Map2d::<f64>::new(w, h);
    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        (
            ((x - die.lo.x) / die.width() * w as f64).min(w as f64 - 1.0) as usize,
            ((y - die.lo.y) / die.height() * h as f64).min(h as f64 - 1.0) as usize,
        )
    };
    for rail in design.rails() {
        let (cx, _) = to_cell(rail.rect.center().x, 0.0);
        for cy in 0..h {
            if canvas[(cx, cy)] == 0.0 {
                canvas[(cx, cy)] = 1.0;
            }
        }
    }
    for piece in &selected {
        debug_assert_eq!(piece.dir, Dir::Vertical);
        let (cx, y0) = to_cell(piece.rect.center().x, piece.rect.lo.y);
        let (_, y1) = to_cell(piece.rect.center().x, piece.rect.hi.y);
        for cy in y0..=y1 {
            canvas[(cx, cy)] = 2.0;
        }
    }
    for m in design.macros() {
        let r = design.cell_rect(m);
        let (x0, y0) = to_cell(r.lo.x, r.lo.y);
        let (x1, y1) = to_cell(r.hi.x, r.hi.y);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                canvas[(cx, cy)] = 3.0;
            }
        }
    }
    let glyph = |v: f64| match v as u32 {
        0 => ' ',
        1 => '.',
        2 => '|',
        _ => '#',
    };
    for cy in (0..h).rev() {
        let line: String = (0..w).map(|cx| glyph(canvas[(cx, cy)])).collect();
        println!("{line}");
    }
    println!("\nlegend: '#' macro, '|' selected rail piece, '.' unselected rail span");

    // Summary per rail: how many pieces survived.
    let total_len: f64 = design.rails().iter().map(|r| r.length()).sum();
    let kept_len: f64 = selected.iter().map(|r| r.length()).sum();
    println!(
        "rail length kept for density adjustment: {:.0} of {:.0} um ({:.0}%)",
        kept_len,
        total_len,
        kept_len / total_len * 100.0
    );
}
