//! Diagnoses the high-utilization failure mode: does virtual-width
//! legalization fit, and how much does each stage cost? (dev tool)

use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};
use rdp_drc::{evaluate, EvalConfig};
use rdp_legal::{legalize, legalize_virtual, LegalizeConfig};

fn main() {
    for name in ["des_perf_1", "matrix_mult_1", "fft_b"] {
        let entry = rdp_gen::ispd2015_suite()
            .into_iter()
            .find(|e| e.name == name)
            .unwrap();
        let base = rdp_bench::prepare_design(&entry);
        let mut d = base.clone();
        let flow =
            run_flow(&mut d, &RoutabilityConfig::preset(PlacerPreset::Ours)).expect("diverged");
        let e_global = evaluate(&d, &EvalConfig::default());

        let widths = rdp_bench::virtual_widths(&d, &flow).expect("ours inflates");
        let total_virtual: f64 = d
            .movable_cells()
            .map(|c| widths[c.index()] * d.cell(c).h)
            .sum();
        println!(
            "{name}: util {:.2}, virtual-area/free {:.3}",
            d.utilization(),
            total_virtual / d.free_area()
        );

        let mut dv = d.clone();
        let rep_v = legalize_virtual(&mut dv, &LegalizeConfig::default(), &widths);
        let e_v = evaluate(&dv, &EvalConfig::default());
        let mut dr = d.clone();
        let rep_r = legalize(&mut dr, &LegalizeConfig::default());
        let e_r = evaluate(&dr, &EvalConfig::default());
        println!(
            "  global ovfl {:.0} | virtual-LG: failed? maxdisp {:.1} avg {:.2} → ovfl {:.0} | real-LG: maxdisp {:.1} avg {:.2} → ovfl {:.0}",
            e_global.drv_overflow,
            rep_v.max_displacement,
            rep_v.avg_displacement,
            e_v.drv_overflow,
            rep_r.max_displacement,
            rep_r.avg_displacement,
            e_r.drv_overflow
        );
    }
}
