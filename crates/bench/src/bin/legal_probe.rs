//! Measures evaluation metrics before vs after legalization (dev tool).

use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};
use rdp_drc::{evaluate, EvalConfig};
use rdp_legal::{detailed_place, legalize, DetailedConfig, LegalizeConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "matrix_mult_1".into());
    let entry = rdp_gen::ispd2015_suite()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap();
    for (label, preset) in [
        ("Xplace", PlacerPreset::Xplace),
        ("Ours", PlacerPreset::Ours),
    ] {
        let mut d = rdp_bench::prepare_design(&entry);
        run_flow(&mut d, &RoutabilityConfig::preset(preset)).expect("flow diverged");
        let refine: usize = std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(2);
        let cfg_e = EvalConfig {
            refine,
            ..EvalConfig::default()
        };
        let e0 = evaluate(&d, &cfg_e);
        let rep = legalize(&mut d, &LegalizeConfig::default());
        let e1 = evaluate(&d, &cfg_e);
        detailed_place(&mut d, &DetailedConfig::default());
        let e2 = evaluate(&d, &cfg_e);
        println!(
            "{label}: global ovfl {:.0} drwl {:.0} | legal ovfl {:.0} drwl {:.0} (maxdisp {:.1}, avg {:.2}) | dp ovfl {:.0} drwl {:.0}",
            e0.drv_overflow, e0.drwl, e1.drv_overflow, e1.drwl, rep.max_displacement,
            rep.avg_displacement, e2.drv_overflow, e2.drwl
        );
    }
}
