//! Regenerates **Fig. 2**: a walk-through of the routability-driven flow,
//! printing each stage and the per-iteration loop state (router → MCI →
//! DPA → DC → Nesterov) including the C(x,y) stopping rule.
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin fig2 [design]
//! ```

use rdp_core::{run_flow, select_rails, DpaConfig, PlacerPreset, RoutabilityConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft_b".into());
    let entry = rdp_gen::ispd2015_suite()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("unknown design `{name}`"));
    let mut design = rdp_bench::prepare_design(&entry);

    println!("== Fig. 2 flow walk-through on `{name}` ==\n");
    println!("[1] PG rail selection for pin accessibility");
    let selected = select_rails(&design, &DpaConfig::default());
    println!(
        "    {} rails in the design → {} selected pieces after macro cutting + length filter",
        design.rails().len(),
        selected.len()
    );

    println!("[2] wirelength-driven global placement (Xplace engine)");
    let cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    let report = run_flow(&mut design, &cfg).expect("flow diverged");
    println!(
        "    {} Nesterov iterations → HPWL {:.0} um, density overflow {:.3}",
        report.gp_iterations, report.hpwl, report.density_overflow
    );

    println!("[3] routability-driven iterations (route → MCI → DPA → DC → solve Eq. (5))");
    println!(
        "    {:>4} {:>12} {:>8} {:>12} {:>10} {:>9} {:>12}",
        "iter", "overflow", "maxC", "C(x,y)", "lambda2", "virtual", "HPWL"
    );
    for l in &report.log {
        println!(
            "    {:>4} {:>12.1} {:>8.2} {:>12.4} {:>10.4} {:>9} {:>12.0}",
            l.iter, l.overflow, l.max_congestion, l.c_penalty, l.lambda2, l.virtual_cells, l.hpwl
        );
    }
    println!(
        "    stopped after {} iterations ({}); placement time {:.2}s",
        report.route_iterations,
        if report.route_iterations < cfg.max_route_iters {
            "C(x,y) stopped decreasing"
        } else {
            "iteration cap"
        },
        report.place_seconds
    );

    println!("[4] legalization + detailed placement (rdp-legal)");
    let legal = rdp_legal::legalize(&mut design, &rdp_legal::LegalizeConfig::default());
    let gain = rdp_legal::detailed_place(&mut design, &rdp_legal::DetailedConfig::default());
    println!(
        "    max displacement {:.2} um, detailed placement gained {:.0} um HPWL",
        legal.max_displacement, gain
    );
    let check = rdp_legal::check_legality(&design);
    println!("    legality: {check:?}");
}
