//! Regenerates **Fig. 1**: demonstrates the two congestion species and
//! the bounding-box overreach that motivates the paper's virtual-cell
//! net moving.
//!
//! (a) *Local* routing congestion from a dense cell cluster (movable by
//!     relocating cells) vs *global* routing congestion from a net bundle
//!     crossing a region that contains no cells at all (not fixable by
//!     moving cells out of the region — the nets themselves must move).
//! (b) A two-pin net whose bounding box contains congestion the net does
//!     not cause: a BB-based penalty (RUDY-style) charges the net for it,
//!     while the paper's virtual cell lands only on the congestion that
//!     lies on the net's own segment.
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin fig1
//! ```

use rdp_core::{two_pin_gradient, CongestionField, NetMoveConfig};
use rdp_db::{Cell, DesignBuilder, NetId, Point, Rect, RoutingSpec};
use rdp_route::{rudy_map, GlobalRouter};

fn main() {
    // ---- (a) local + global congestion in one design --------------------
    let mut b = DesignBuilder::new("fig1", Rect::new(0.0, 0.0, 96.0, 96.0));
    // Local congestion: a dense cluster of connected cells bottom-left.
    let mut cluster = Vec::new();
    for i in 0..60 {
        let x = 8.0 + (i % 10) as f64 * 1.5;
        let y = 8.0 + (i / 10) as f64 * 2.0;
        cluster.push(b.add_cell(Cell::std(format!("lc{i}"), 1.2, 2.0), Point::new(x, y)));
    }
    for i in 0..55 {
        b.add_net(
            format!("ln{i}"),
            vec![
                (cluster[i], Point::default()),
                (cluster[(i * 7 + 3) % 60], Point::default()),
            ],
        );
    }
    // Global congestion: a bundle of long nets crossing the empty top
    // stripe (no cells live there).
    let mut bundle = Vec::new();
    for i in 0..25 {
        let y = 76.0 + (i % 4) as f64;
        let a = b.add_cell(Cell::std(format!("ga{i}"), 1.2, 2.0), Point::new(4.0, y));
        let c = b.add_cell(Cell::std(format!("gb{i}"), 1.2, 2.0), Point::new(92.0, y));
        bundle.push((a, c));
    }
    for (i, (a, c)) in bundle.iter().enumerate() {
        b.add_net(
            format!("gn{i}"),
            vec![(*a, Point::default()), (*c, Point::default())],
        );
    }
    // The probe net of Fig. 1(b): crosses the global stripe; its BB also
    // swallows the unrelated cluster congestion at the bottom-left.
    let p1 = b.add_cell(Cell::std("p1", 1.2, 2.0), Point::new(20.0, 88.0));
    let p2 = b.add_cell(Cell::std("p2", 1.2, 2.0), Point::new(88.0, 60.0));
    b.add_net(
        "probe",
        vec![(p1, Point::default()), (p2, Point::default())],
    );
    b.routing(RoutingSpec::uniform(4, 2.0, 16, 16));
    let design = b.build().unwrap();

    let route = GlobalRouter::default().route(&design);
    let field = CongestionField::from_route(&design, &route);
    let grid = design.gcell_grid();

    println!("== Fig. 1(a): congestion map (Eq. 3) ==");
    println!("{}", route.congestion.ascii_heatmap(32));

    let local_c = field.congestion_at(Point::new(14.0, 12.0));
    let global_c = field.congestion_at(Point::new(48.0, 78.0));
    let cells_in_stripe = design
        .movable_cells()
        .filter(|&c| {
            let p = design.pos(c);
            (40.0..72.0).contains(&p.x) && p.y > 72.0
        })
        .count();
    println!("local congestion at the cell cluster:  C = {local_c:.2}");
    println!("global congestion in the net stripe:   C = {global_c:.2}");
    println!("cells inside the congested stripe region x∈[40,72]: {cells_in_stripe}");
    println!("→ the stripe congestion cannot be fixed by moving cells out of it\n");

    // ---- (b) BB overreach vs the virtual cell ----------------------------
    let probe = NetId::from_index(design.num_nets() - 1);
    let bb = design.net_bbox(probe).unwrap();
    let rudy = rudy_map(&design, &grid);

    // Congestion inside the BB split into "on the net's segment" vs not.
    let mut bb_congestion = 0.0;
    let mut bb_cells = 0;
    for (ix, iy, &c) in field.cmap.iter_coords() {
        if bb.intersects(&grid.bin_rect(ix, iy)) && c > 0.0 {
            bb_congestion += c;
            bb_cells += 1;
        }
    }
    let info = two_pin_gradient(&design, &field, &NetMoveConfig::default(), probe, 1.0)
        .expect("probe net spans G-cells");
    println!("== Fig. 1(b): probe net bounding box {bb} ==");
    println!(
        "congested G-cells inside the BB: {bb_cells} (total C = {bb_congestion:.1}) — RUDY max inside BB {:.2}",
        max_in(&rudy, &grid, &bb)
    );
    println!(
        "virtual cell placed at {} with segment congestion C = {:.2}",
        info.pos,
        field.congestion_at(info.pos)
    );
    println!(
        "→ a BB penalty charges the net for all {bb_cells} congested cells; the\n  virtual cell reacts only to congestion on the net's own segment"
    );
}

fn max_in(map: &rdp_db::Map2d<f64>, grid: &rdp_db::GridSpec, r: &Rect) -> f64 {
    let mut m: f64 = 0.0;
    for (ix, iy, &v) in map.iter_coords() {
        if r.intersects(&grid.bin_rect(ix, iy)) {
            m = m.max(v);
        }
    }
    m
}
