//! Regenerates **Table II** (ablation): starting from the Xplace-Route
//! baseline, the paper's techniques are enabled one at a time —
//! momentum-based cell inflation (MCI), the differentiable congestion /
//! net-moving term (DC), and dynamic pin-accessibility density (DPA) —
//! and the mean DRWL / #DRVias / #DRVs ratios are reported against the
//! full method (last row = 1.00).
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin table2 [-- --designs fft_b,des_perf_a]
//! ```

use rdp_bench::{mean_ratios, prepare_design, run_pipeline, RowResult};
use rdp_core::{DpaMode, InflationPolicy, PlacerPreset, RoutabilityConfig};
use rdp_drc::EvalConfig;

fn ablation_config(mci: bool, dc: bool, dpa: bool) -> RoutabilityConfig {
    if !mci && !dc && !dpa {
        // Row 1 of Table II is the Xplace-Route baseline.
        return RoutabilityConfig::preset(PlacerPreset::XplaceRoute);
    }
    let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    cfg.inflation = if mci {
        InflationPolicy::Momentum { alpha: 0.4 }
    } else {
        InflationPolicy::Monotone { beta: 0.6 }
    };
    cfg.enable_dc = dc;
    cfg.dpa = if dpa { Some(DpaMode::Dynamic) } else { None };
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let designs: Vec<String> = args
        .iter()
        .position(|a| a == "--designs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            rdp_gen::ispd2015_suite()
                .iter()
                .map(|e| e.name.to_string())
                .collect()
        });

    let rows_cfg = [
        ("-    -    -  ", (false, false, false)),
        ("MCI  -    -  ", (true, false, false)),
        ("MCI  DC   -  ", (true, true, false)),
        ("MCI  DC   DPA", (true, true, true)),
    ];

    let eval_cfg = EvalConfig::default();
    let mut results: Vec<Vec<RowResult>> = vec![Vec::new(); rows_cfg.len()];
    for name in &designs {
        let entry = rdp_gen::ispd2015_suite()
            .into_iter()
            .find(|e| e.name == name.as_str())
            .unwrap_or_else(|| panic!("unknown design `{name}`"));
        let base = prepare_design(&entry);
        eprintln!("[{name}] prepared");
        for (ri, (_, (mci, dc, dpa))) in rows_cfg.iter().enumerate() {
            let mut d = base.clone();
            let row = run_pipeline(&mut d, &ablation_config(*mci, *dc, *dpa), &eval_cfg);
            eprintln!(
                "[{name}] {}: drvs {:.0}, drwl {:.0}",
                rows_cfg[ri].0, row.drvs, row.drwl
            );
            results[ri].push(row);
        }
    }

    let full = results.last().expect("non-empty").clone();
    println!(
        "\nTable II: Ablation Experiment ({} designs)",
        designs.len()
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "Methods", "DRWL", "#DRVias", "#DRVs"
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "MCI  DC   DPA", "Avg.Ratio", "Avg.Ratio", "Avg.Ratio"
    );
    for (ri, (label, _)) in rows_cfg.iter().enumerate() {
        let (w, v, d) = mean_ratios(&results[ri], &full);
        println!("{:<16} {:>12.2} {:>12.2} {:>12.2}", label, w, v, d);
    }
}
