//! Sweeps the generator's capacity-calibration quantile to find the range
//! where post-placement routing congestion is real but fixable (dev tool).

use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};
use rdp_drc::{evaluate, EvalConfig};
use rdp_gen::{generate, GenParams};
use rdp_legal::{detailed_place, legalize, DetailedConfig, LegalizeConfig};

fn main() {
    let base = GenParams {
        num_cells: 2200,
        num_macros: 6,
        macro_fraction: 0.22,
        utilization: 0.36,
        io_terminals: 16,
        high_fanout_nets: 5,
        rail_pitch: 1.0,
        seed: 108,
        ..GenParams::default()
    };
    println!(
        "{:>7} {:<13} {:>10} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "margin", "placer", "DRWL", "vias", "DRVs", "ovfl", "pin", "rail"
    );
    for margin in [0.95, 0.85, 0.7, 0.55, 0.4] {
        for (label, preset) in [
            ("Xplace", PlacerPreset::Xplace),
            ("Xplace-Route", PlacerPreset::XplaceRoute),
            ("Ours", PlacerPreset::Ours),
        ] {
            let mut d = generate(
                "m",
                &GenParams {
                    congestion_margin: margin,
                    ..base.clone()
                },
            );
            run_flow(&mut d, &RoutabilityConfig::preset(preset)).expect("flow diverged");
            legalize(&mut d, &LegalizeConfig::default());
            detailed_place(&mut d, &DetailedConfig::default());
            let e = evaluate(&d, &EvalConfig::default());
            println!(
                "{:>7.2} {:<13} {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>7.0}",
                margin,
                label,
                e.drwl,
                e.drvias,
                e.drvs,
                e.drv_overflow,
                e.drv_pin_access,
                e.drv_rail
            );
        }
    }
}
