//! Bench-baseline regression gate (CI): compares fresh `BENCH_<suite>.json`
//! outputs against the committed baselines with a relative tolerance,
//! taking the per-benchmark median across N fresh run directories so one
//! noisy run cannot fail the gate.
//!
//! ```sh
//! bench_diff --baseline crates/bench/baselines --current RUN1 --current RUN2 \
//!            --current RUN3 --tol 0.5 [--suites kernels,guard,obs]
//! ```
//!
//! Exits non-zero when any benchmark's median-of-N is more than `tol`
//! (relative) slower than its baseline. Benchmarks present on only one
//! side are reported but never regressions.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rdp_report::bench::{diff_suite, median_of_runs, parse_bench_json, SuiteResults};

struct Args {
    baseline: PathBuf,
    current: Vec<PathBuf>,
    tol: f64,
    suites: Option<Vec<String>>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = None;
    let mut current = Vec::new();
    let mut tol = 0.5;
    let mut suites = None;
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(need(i)?));
                i += 2;
            }
            "--current" => {
                current.push(PathBuf::from(need(i)?));
                i += 2;
            }
            "--tol" => {
                tol = need(i)?
                    .parse()
                    .map_err(|_| format!("--tol `{}` is not a number", argv[i + 1]))?;
                i += 2;
            }
            "--suites" => {
                suites = Some(need(i)?.split(',').map(str::to_string).collect());
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("missing --baseline DIR")?,
        current,
        tol,
        suites,
    })
}

/// Reads every `BENCH_*.json` in `dir` into suite → results.
fn load_dir(dir: &Path) -> Result<BTreeMap<String, SuiteResults>, String> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (suite, results) =
            parse_bench_json(&text, &path.display().to_string()).map_err(|e| e.to_string())?;
        out.insert(suite, results);
    }
    Ok(out)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.current.is_empty() {
        return Err("missing --current DIR (repeatable)".into());
    }

    let baselines = load_dir(&args.baseline)?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            args.baseline.display()
        ));
    }
    let runs: Vec<BTreeMap<String, SuiteResults>> = args
        .current
        .iter()
        .map(|d| load_dir(d))
        .collect::<Result<_, _>>()?;

    let mut regressions = Vec::new();
    for (suite, base) in &baselines {
        if let Some(filter) = &args.suites {
            if !filter.contains(suite) {
                continue;
            }
        }
        let fresh: Vec<SuiteResults> = runs.iter().filter_map(|r| r.get(suite)).cloned().collect();
        if fresh.is_empty() {
            println!("suite {suite}: no fresh results (skipped)");
            continue;
        }
        let merged = median_of_runs(&fresh);
        println!(
            "suite {suite} (baseline vs median of {} runs, tol {:.0}%):",
            fresh.len(),
            100.0 * args.tol
        );
        for d in diff_suite(base, &merged, args.tol) {
            let status = if d.regression {
                regressions.push(format!("{suite}/{}", d.name));
                "  REGRESSION"
            } else if d.baseline_ns.is_nan() {
                "  (new, no baseline)"
            } else if d.current_ns.is_nan() {
                "  (removed from suite)"
            } else {
                ""
            };
            if d.rel.is_nan() {
                println!(
                    "  {:<40} {:>12.0} -> {:>12.0} ns{status}",
                    d.name, d.baseline_ns, d.current_ns
                );
            } else {
                // Per-kernel speedup vs the committed baseline (>1 means
                // the fresh median is faster).
                println!(
                    "  {:<40} {:>12.0} -> {:>12.0} ns  {:>+7.1}%  {:>5.2}x{status}",
                    d.name,
                    d.baseline_ns,
                    d.current_ns,
                    100.0 * d.rel,
                    d.baseline_ns / d.current_ns
                );
            }
        }
    }

    if regressions.is_empty() {
        println!(
            "bench diff: PASS (no regression beyond {:.0}%)",
            100.0 * args.tol
        );
        Ok(())
    } else {
        Err(format!("perf regression in: {}", regressions.join(", ")))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench diff: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
