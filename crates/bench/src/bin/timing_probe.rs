//! Quick wall-clock probe of the flow on one suite design (dev tool).

use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft_1".into());
    let t0 = std::time::Instant::now();
    let mut design = rdp_gen::generate_named(&name).expect("unknown design");
    println!(
        "generate: {:.2}s ({} cells, {} nets)",
        t0.elapsed().as_secs_f64(),
        design.num_cells(),
        design.num_nets()
    );
    let t1 = std::time::Instant::now();
    let report =
        run_flow(&mut design, &RoutabilityConfig::preset(PlacerPreset::Ours)).expect("diverged");
    println!(
        "flow: {:.2}s (gp {} iters, route {} iters, hpwl {:.0})",
        t1.elapsed().as_secs_f64(),
        report.gp_iterations,
        report.route_iterations,
        report.hpwl
    );
}
