//! Observability smoke check (CI gate): runs a traced 5k-cell flow with
//! an injected numerical fault, then validates every exporter output —
//! JSONL schema, Chrome trace_event structure, metrics JSON — and
//! asserts that the trace covers every flow stage and mirrors every
//! guard warning/rollback the report counted. Exits non-zero on any
//! violation.
//!
//! ```sh
//! cargo run --release -p rdp-bench --bin obs_smoke
//! cargo run --release -p rdp-bench --bin obs_smoke -- --out DIR   # keep files
//! ```

use std::process::ExitCode;

use rdp_core::{run_flow_with, FlowControl, FlowFault, PlacerPreset, RoutabilityConfig};
use rdp_gen::{generate, GenParams};
use rdp_obs::{
    export_chrome_trace, export_jsonl, export_metrics_json, stage_table, validate_chrome_trace,
    validate_trace_jsonl, Collector,
};

/// Span names a complete traced flow must contain. `checkpoint` is
/// covered because the smoke run installs an `on_checkpoint` hook;
/// `guard_warning`/`rollback` instants are forced by the injected fault.
const REQUIRED_SPANS: &[&str] = &[
    "wirelength_gp",
    "gp_step",
    "wa_grad",
    "density_grad",
    "density_field",
    "poisson_solve",
    "route_iter",
    "route",
    "route_decompose",
    "route_pass",
    "congestion_field",
    "mci_update",
    "dpa_density",
    "netmove",
    "gp_burst",
    "checkpoint",
    "final_route",
];

fn run() -> Result<(), String> {
    let mut design = generate(
        "obs-smoke",
        &GenParams {
            num_cells: 5_000,
            num_macros: 2,
            utilization: 0.6,
            congestion_margin: 0.85,
            seed: 7,
            ..GenParams::default()
        },
    );

    let obs = Collector::enabled();
    let mut on_checkpoint = |_cp: &rdp_core::FlowCheckpoint| {};
    let ctrl = FlowControl {
        obs: obs.clone(),
        // Poison the first net-moving gradient of iteration 1: the guard
        // must catch it, warn, and roll back — giving the trace at least
        // one guard_warning and one rollback instant to check parity on.
        fault: Some(FlowFault::NanCongestionGrad { route_iter: 1 }),
        on_checkpoint: Some(&mut on_checkpoint),
        ..Default::default()
    };
    let report = run_flow_with(
        &mut design,
        &RoutabilityConfig::preset(PlacerPreset::Ours),
        ctrl,
    )
    .map_err(|e| format!("flow failed: {e}"))?;

    // 1. JSONL schema.
    let jsonl = export_jsonl(&obs);
    let summary = validate_trace_jsonl(&jsonl).map_err(|e| format!("JSONL invalid: {e}"))?;
    println!(
        "JSONL ok: {} spans, {} instants, {} dropped",
        summary.spans, summary.instants, summary.dropped
    );

    // 2. Stage coverage.
    for name in REQUIRED_SPANS {
        if !summary.span_names.contains(*name) {
            return Err(format!("trace is missing required span `{name}`"));
        }
    }
    println!(
        "stage coverage ok: all {} required spans",
        REQUIRED_SPANS.len()
    );

    // 3. Warning/rollback parity between FlowReport and trace.
    if summary.guard_warnings != report.warnings.len() as u64 {
        return Err(format!(
            "warning parity broken: report has {}, trace has {}",
            report.warnings.len(),
            summary.guard_warnings
        ));
    }
    if summary.rollbacks != report.rollbacks as u64 {
        return Err(format!(
            "rollback parity broken: report has {}, trace has {}",
            report.rollbacks, summary.rollbacks
        ));
    }
    if summary.guard_warnings == 0 {
        return Err("injected fault produced no guard_warning event".into());
    }
    println!(
        "guard parity ok: {} warning(s), {} rollback(s) in both report and trace",
        summary.guard_warnings, summary.rollbacks
    );

    // 4. Chrome trace structure.
    let chrome = export_chrome_trace(&obs);
    let n = validate_chrome_trace(&chrome).map_err(|e| format!("Chrome trace invalid: {e}"))?;
    println!("Chrome trace ok: {n} events");

    // 5. Metrics JSON parses and carries the convergence series.
    let metrics = export_metrics_json(&obs);
    let v = rdp_obs::json::parse(&metrics).map_err(|e| format!("metrics JSON invalid: {e}"))?;
    for series in ["hpwl", "route_overflow", "lambda2", "density_overflow"] {
        let pts = v
            .get("series")
            .and_then(|s| s.get(series))
            .and_then(|s| s.as_arr())
            .ok_or_else(|| format!("metrics missing series `{series}`"))?;
        if pts.is_empty() {
            return Err(format!("series `{series}` is empty"));
        }
    }
    println!("metrics ok: convergence series present");

    // 6. HTML report renders, self-validates, and carries at least one
    //    congestion heatmap per traced routability iteration.
    let model = rdp_report::RunModel::from_collector(&obs)
        .map_err(|e| format!("collector ingest failed: {e}"))?;
    let html = rdp_report::render_report(&model, "obs smoke");
    let stats = rdp_report::validate_report(&html, &model)
        .map_err(|e| format!("HTML report invalid: {e}"))?;
    let route_iters = model.route_iterations();
    if route_iters.is_empty() {
        return Err("trace recorded no route_iter spans".into());
    }
    for it in &route_iters {
        let has_congestion = model
            .frames
            .iter()
            .any(|f| f.name == "congestion" && f.iter == Some(*it));
        if !has_congestion {
            return Err(format!(
                "no congestion frame captured for routability iteration {it}"
            ));
        }
    }
    println!(
        "report ok: {} charts, {} heatmaps; congestion frame for each of {} route iterations",
        stats.charts,
        stats.heatmaps,
        route_iters.len()
    );

    if let Some(dir) = std::env::args()
        .position(|a| a == "--out")
        .and_then(|i| std::env::args().nth(i + 1))
    {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("smoke.jsonl"), &jsonl).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("smoke_chrome.json"), &chrome).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("smoke_metrics.json"), &metrics).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("smoke_report.html"), &html).map_err(|e| e.to_string())?;
        println!("kept trace files in {}", dir.display());
    }

    print!("{}", stage_table(&obs));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("obs smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs smoke: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
