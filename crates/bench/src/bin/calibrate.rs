//! Per-design capacity-margin calibration (dev tool).
//!
//! For every suite design this searches the generator's
//! `congestion_margin` so that the **Xplace** baseline's overflow DRVs
//! land near a target proportional to the paper's Table I Xplace DRV
//! column (scaled to the synthetic suite's size). The resulting margins
//! are pasted into `rdp-gen`'s suite table.
//!
//! The Xplace placement itself is capacity-independent (no router in its
//! loop), so each design is placed and legalized once and only the
//! routing spec is re-derived per candidate margin.

use rdp_core::{run_flow, PlacerPreset, RoutabilityConfig};
use rdp_drc::{evaluate, EvalConfig};
use rdp_gen::{generate, ispd2015_suite};
use rdp_legal::{detailed_place, legalize, DetailedConfig, LegalizeConfig};

/// Paper Table I Xplace #DRVs scaled by ~1/60, clamped to sane bounds.
fn target_overflow(name: &str) -> f64 {
    let paper: f64 = match name {
        "des_perf_1" => 24977.0,
        "des_perf_a" => 29875.0,
        "des_perf_b" => 19580.0,
        "edit_dist_a" => 405858.0,
        "fft_1" => 9249.0,
        "fft_2" => 9334.0,
        "fft_a" => 5650.0,
        "fft_b" => 33875.0,
        "matrix_mult_1" => 80816.0,
        "matrix_mult_2" => 72311.0,
        "matrix_mult_a" => 34618.0,
        "matrix_mult_b" => 68415.0,
        "matrix_mult_c" => 34226.0,
        "pci_bridge32_a" => 6553.0,
        "pci_bridge32_b" => 2828.0,
        "superblue11_a" => 866.0,
        "superblue12" => 80000.0, // Innovus aborted on Xplace; use a stressed stand-in
        "superblue14" => 344.0,
        "superblue16_a" => 4486.0,
        "superblue19" => 10097.0,
        _ => 5000.0,
    };
    (paper / 60.0).clamp(10.0, 4000.0)
}

fn main() {
    let eval_cfg = EvalConfig::default();
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>10}",
        "design", "margin", "ovfl", "target", "pin"
    );
    for entry in ispd2015_suite() {
        // Place once with the wirelength-driven baseline.
        let mut placed = generate(entry.name, &entry.params);
        run_flow(
            &mut placed,
            &RoutabilityConfig::preset(PlacerPreset::Xplace),
        )
        .expect("baseline placement diverged");
        legalize(&mut placed, &LegalizeConfig::default());
        detailed_place(&mut placed, &DetailedConfig::default());

        let target = target_overflow(entry.name);
        // Bisection on the margin: lower margin ⇒ scarcer capacity ⇒ more
        // overflow. Capacity is re-anchored on the placed baseline, as
        // `prepare_design` does.
        let (mut lo, mut hi) = (0.5_f64, 0.995_f64);
        let mut best = (f64::INFINITY, hi, 0.0, 0.0);
        for _ in 0..8 {
            let mid = 0.5 * (lo + hi);
            let spec = rdp_gen::calibrate_routing(&placed, mid);
            let mut d = placed.clone();
            d.set_routing(spec);
            let e = evaluate(&d, &eval_cfg);
            let err = (e.drv_overflow - target).abs();
            if err < best.0 {
                best = (err, mid, e.drv_overflow, e.drv_pin_access);
            }
            if e.drv_overflow > target {
                lo = mid; // too much overflow → loosen
            } else {
                hi = mid; // too little → tighten
            }
        }
        println!(
            "{:<16} {:>8.3} {:>8.0} {:>10.0} {:>10.0}",
            entry.name, best.1, best.2, target, best.3
        );
    }
}
