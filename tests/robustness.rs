//! Workspace robustness suite: deterministic fault injection against the
//! full pipeline.
//!
//! Every [`FaultPlan`] below names one fault, where it strikes, and the
//! contract the pipeline must honor when it does:
//!
//! * [`FaultExpectation::TypedError`] — the stage returns a clean typed
//!   error (with a line number for parse faults, `Stage::Checkpoint` for
//!   snapshot faults). Never a panic.
//! * [`FaultExpectation::DegradedOk`] — the flow completes and records a
//!   warning describing the degraded mode it fell into.
//! * [`FaultExpectation::RecoveredOk`] — the flow rolls back to the last
//!   good state, re-tunes, and still completes with finite results.
//!
//! Each scenario runs under `catch_unwind`, so a panic anywhere in the
//! pipeline fails the suite with the scenario's name attached. The whole
//! table is deterministic: a failure replays exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rdp::core::{
    run_flow, run_flow_with, FlowCheckpoint, FlowControl, FlowFault, PlacerPreset,
    RoutabilityConfig, Stage,
};
use rdp::db::{Cell, Design, DesignBuilder, Dir, PgRail, Point, Rect, RoutingSpec};
use rdp::gen::{generate, GenParams};
use rdp_testkit::{FaultExpectation, FaultKind, FaultPlan};

fn small_design(seed: u64) -> Design {
    generate(
        "robust",
        &GenParams {
            num_cells: 300,
            num_macros: 2,
            macro_fraction: 0.12,
            utilization: 0.6,
            congestion_margin: 0.8,
            io_terminals: 8,
            high_fanout_nets: 2,
            rail_pitch: 1.0,
            seed,
            ..GenParams::default()
        },
    )
}

fn fast_cfg() -> RoutabilityConfig {
    let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    cfg.gp.max_iters = 120;
    cfg.max_route_iters = 3;
    cfg.gp_iters_per_route = 8;
    cfg
}

/// A design with a NaN power rail. `Rect` fields are built directly
/// because `Rect::new` (rightly) rejects malformed corners in debug
/// builds — this models a corrupted database, not a parser product.
fn design_with_degenerate_rail() -> Design {
    let die = Rect::new(0.0, 0.0, 60.0, 60.0);
    let mut b = DesignBuilder::new("degenerate-rails", die);
    let mut ids = Vec::new();
    for i in 0..48 {
        let x = 5.0 + 6.0 * (i % 8) as f64;
        let y = 5.0 + 8.0 * (i / 8) as f64;
        ids.push(b.add_cell(Cell::std(format!("c{i}"), 1.5, 1.0), Point::new(x, y)));
    }
    for (i, w) in ids.windows(2).enumerate() {
        b.add_net(
            format!("n{i}"),
            vec![(w[0], Point::default()), (w[1], Point::default())],
        );
    }
    b.routing(RoutingSpec::uniform(4, 1.5, 16, 16));
    b.add_rail(PgRail {
        layer: 1,
        dir: Dir::Horizontal,
        rect: Rect {
            lo: Point::new(f64::NAN, f64::NAN),
            hi: Point::new(f64::NAN, f64::NAN),
        },
    });
    b.build()
        .expect("degenerate rail geometry is a runtime fault, not a build error")
}

/// Runs a full flow once and returns the serialized checkpoint captured
/// at the top of routability iteration `at_iter`.
fn capture_checkpoint(seed: u64, at_iter: usize) -> Vec<u8> {
    let mut design = small_design(seed);
    let cfg = fast_cfg();
    let mut captured: Option<Vec<u8>> = None;
    let mut hook = |cp: &FlowCheckpoint| {
        if cp.next_route_iter == at_iter && captured.is_none() {
            captured = Some(cp.to_bytes());
        }
    };
    run_flow_with(
        &mut design,
        &cfg,
        FlowControl {
            on_checkpoint: Some(&mut hook),
            ..Default::default()
        },
    )
    .expect("healthy capture run must complete");
    captured.expect("flow emitted no checkpoint at the requested iteration")
}

/// Executes one scenario and checks its contract. Returns `Err` with a
/// human-readable description when the contract is violated.
fn run_plan(plan: &FaultPlan) -> Result<(), String> {
    match &plan.kind {
        // ------------------------------------------------------- parse --
        FaultKind::CorruptNumber { .. }
        | FaultKind::NonFiniteNumber { .. }
        | FaultKind::DropLinesContaining { .. }
        | FaultKind::TruncateLines { .. } => {
            let original = small_design(11);
            let err = match plan.name {
                "corrupt-bookshelf-number" | "nan-bookshelf-number" => {
                    let mut files = rdp::parse::write_bookshelf(&original);
                    files.nodes = plan.kind.mutate_text(&files.nodes);
                    rdp::parse::read_bookshelf("robust", &files)
                        .map(|_| ())
                        .map_err(|e| e)
                }
                "truncated-bookshelf-nets" | "dropped-net-degrees" => {
                    let mut files = rdp::parse::write_bookshelf(&original);
                    files.nets = plan.kind.mutate_text(&files.nets);
                    rdp::parse::read_bookshelf("robust", &files)
                        .map(|_| ())
                        .map_err(|e| e)
                }
                "corrupt-def-number" => {
                    let mut files = rdp::parse::write_lefdef(&original);
                    files.def = plan.kind.mutate_text(&files.def);
                    rdp::parse::read_lefdef(&files).map(|_| ()).map_err(|e| e)
                }
                "truncated-lef" => {
                    let mut files = rdp::parse::write_lefdef(&original);
                    files.lef = plan.kind.mutate_text(&files.lef);
                    rdp::parse::read_lefdef(&files).map(|_| ()).map_err(|e| e)
                }
                other => return Err(format!("unmapped parse scenario `{other}`")),
            };
            let e = err.err().ok_or("parser accepted a faulted file")?;
            if matches!(
                plan.kind,
                FaultKind::CorruptNumber { .. } | FaultKind::NonFiniteNumber { .. }
            ) && e.line.is_none()
            {
                return Err(format!("parse error lost its line number: {e}"));
            }
            Ok(())
        }

        // -------------------------------------------------------- flow --
        FaultKind::NanReference {
            route_iter,
            gp_iter,
        } => {
            let mut design = small_design(21);
            let cfg = fast_cfg();
            let report = run_flow_with(
                &mut design,
                &cfg,
                FlowControl {
                    fault: Some(FlowFault::NanReference {
                        route_iter: *route_iter,
                        gp_iter: *gp_iter,
                    }),
                    ..Default::default()
                },
            )
            .map_err(|e| format!("flow did not recover: {e}"))?;
            if report.rollbacks == 0 {
                return Err("injected NaN produced no rollback".into());
            }
            if !report.hpwl.is_finite() {
                return Err(format!(
                    "recovered flow has non-finite HPWL {}",
                    report.hpwl
                ));
            }
            if design
                .positions()
                .iter()
                .any(|p| !p.x.is_finite() || !p.y.is_finite())
            {
                return Err("recovered flow left non-finite positions".into());
            }
            Ok(())
        }
        FaultKind::NanCongestionGrad { route_iter } => {
            let mut design = small_design(22);
            let cfg = fast_cfg();
            let report = run_flow_with(
                &mut design,
                &cfg,
                FlowControl {
                    fault: Some(FlowFault::NanCongestionGrad {
                        route_iter: *route_iter,
                    }),
                    ..Default::default()
                },
            )
            .map_err(|e| format!("flow did not degrade cleanly: {e}"))?;
            if !report
                .warnings
                .iter()
                .any(|w| w.message.contains("skipping net moving"))
            {
                return Err(format!(
                    "expected a net-moving skip warning, got {:?}",
                    report.warnings
                ));
            }
            if !report.hpwl.is_finite() {
                return Err("degraded flow has non-finite HPWL".into());
            }
            Ok(())
        }
        FaultKind::ZeroCapacity => {
            let mut design = small_design(23);
            design.set_routing(RoutingSpec::uniform(4, 0.0, 16, 16));
            let cfg = fast_cfg();
            let report = run_flow(&mut design, &cfg)
                .map_err(|e| format!("zero capacity must degrade, not fail: {e}"))?;
            if !report
                .warnings
                .iter()
                .any(|w| w.message.contains("falling back to RUDY"))
            {
                return Err(format!(
                    "expected a RUDY-fallback warning, got {:?}",
                    report.warnings
                ));
            }
            if !report.hpwl.is_finite() {
                return Err("degraded flow has non-finite HPWL".into());
            }
            Ok(())
        }
        FaultKind::DegenerateRails => {
            let mut design = design_with_degenerate_rail();
            let cfg = fast_cfg();
            let report = run_flow(&mut design, &cfg)
                .map_err(|e| format!("degenerate rails must degrade, not fail: {e}"))?;
            if !report
                .warnings
                .iter()
                .any(|w| w.stage == Stage::Dpa && w.message.contains("D^PG"))
            {
                return Err(format!(
                    "expected a D^PG skip warning, got {:?}",
                    report.warnings
                ));
            }
            Ok(())
        }

        // -------------------------------------------------- checkpoint --
        FaultKind::CorruptCheckpointByte { .. } | FaultKind::TruncateBytes { .. } => {
            let bytes = capture_checkpoint(31, 2);
            let bad = plan.kind.mutate_bytes(&bytes);
            match FlowCheckpoint::from_bytes(&bad) {
                Ok(_) => Err("corrupted checkpoint deserialized successfully".into()),
                Err(e) if e.stage() == Some(Stage::Checkpoint) => Ok(()),
                Err(e) => Err(format!("wrong error stage for corrupt checkpoint: {e}")),
            }
        }

        // The congestion-spike fault targets the predictor's drift gate
        // and is driven by `tests/predict.rs`, not through this harness.
        FaultKind::CongestionSpike { .. } => {
            unreachable!("congestion-spike faults belong to the predict suite")
        }

        // Service faults are driven against a live server by
        // `tests/serve_robustness.rs`, not through the flow harness.
        FaultKind::KillServer { .. }
        | FaultKind::GarbageFrame
        | FaultKind::OversizedFrame
        | FaultKind::TruncatedFrame
        | FaultKind::SlowClient => {
            unreachable!("service faults belong to the serve robustness suite")
        }
    }
}

fn plans() -> Vec<FaultPlan> {
    use FaultExpectation::*;
    vec![
        FaultPlan::new(
            "corrupt-bookshelf-number",
            FaultKind::CorruptNumber { occurrence: 6 },
            TypedError,
        ),
        FaultPlan::new(
            "nan-bookshelf-number",
            FaultKind::NonFiniteNumber { occurrence: 6 },
            TypedError,
        ),
        FaultPlan::new(
            "truncated-bookshelf-nets",
            FaultKind::TruncateLines { keep: 4 },
            TypedError,
        ),
        FaultPlan::new(
            "dropped-net-degrees",
            FaultKind::DropLinesContaining {
                needle: "NetDegree",
            },
            TypedError,
        ),
        FaultPlan::new(
            "corrupt-def-number",
            FaultKind::CorruptNumber { occurrence: 10 },
            TypedError,
        ),
        FaultPlan::new(
            "truncated-lef",
            FaultKind::TruncateLines { keep: 3 },
            TypedError,
        ),
        FaultPlan::new(
            "nan-reference-wirelength",
            FaultKind::NanReference {
                route_iter: 0,
                gp_iter: 5,
            },
            RecoveredOk,
        ),
        FaultPlan::new(
            "nan-reference-routability",
            FaultKind::NanReference {
                route_iter: 1,
                gp_iter: 2,
            },
            RecoveredOk,
        ),
        FaultPlan::new(
            "nan-congestion-grad",
            FaultKind::NanCongestionGrad { route_iter: 1 },
            DegradedOk,
        ),
        FaultPlan::new("zero-capacity-routing", FaultKind::ZeroCapacity, DegradedOk),
        FaultPlan::new(
            "degenerate-pg-rails",
            FaultKind::DegenerateRails,
            DegradedOk,
        ),
        FaultPlan::new(
            "corrupt-checkpoint-byte",
            FaultKind::CorruptCheckpointByte { offset: 37 },
            TypedError,
        ),
        FaultPlan::new(
            "corrupt-checkpoint-magic",
            FaultKind::CorruptCheckpointByte { offset: 0 },
            TypedError,
        ),
        FaultPlan::new(
            "torn-checkpoint-write",
            FaultKind::TruncateBytes { keep: 40 },
            TypedError,
        ),
    ]
}

#[test]
fn every_fault_plan_honors_its_contract_without_panicking() {
    let mut failures = Vec::new();
    for plan in plans() {
        let name = plan.name;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_plan(&plan)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => failures.push(format!("{name}: contract violated: {msg}")),
            Err(_) => failures.push(format!("{name}: PANICKED")),
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// A truncated checkpoint stream (killed mid-write) must be a typed
/// checkpoint error at every cut point, never a panic or a bogus resume.
#[test]
fn truncated_checkpoints_are_typed_errors() {
    let bytes = capture_checkpoint(32, 1);
    for cut in [0, 1, 7, 8, 12, bytes.len() / 2, bytes.len() - 1] {
        let out = catch_unwind(AssertUnwindSafe(|| {
            FlowCheckpoint::from_bytes(&bytes[..cut])
        }));
        match out {
            Ok(Ok(_)) => panic!("truncation at {cut} deserialized successfully"),
            Ok(Err(e)) => assert_eq!(
                e.stage(),
                Some(Stage::Checkpoint),
                "truncation at {cut}: wrong stage: {e}"
            ),
            Err(_) => panic!("truncation at {cut} panicked"),
        }
    }
}

/// The acceptance bar for checkpoint/restore: a run killed after
/// routability iteration 1 and resumed from its checkpoint must reproduce
/// the uninterrupted run's post-GP HPWL and overflow **bitwise**. The CI
/// harness runs this suite at `RDP_THREADS=1` and `RDP_THREADS=4`.
#[test]
fn killed_and_resumed_flow_is_bitwise_identical() {
    let cfg = fast_cfg();

    let mut uninterrupted = small_design(7);
    let full = run_flow(&mut uninterrupted, &cfg).unwrap();

    // "Kill" a second run by capturing the checkpoint written at the top
    // of routability iteration 2 and discarding everything after it.
    let mut captured: Option<Vec<u8>> = None;
    {
        let mut victim = small_design(7);
        let mut hook = |cp: &FlowCheckpoint| {
            if cp.next_route_iter == 2 && captured.is_none() {
                captured = Some(cp.to_bytes());
            }
        };
        run_flow_with(
            &mut victim,
            &cfg,
            FlowControl {
                on_checkpoint: Some(&mut hook),
                ..Default::default()
            },
        )
        .unwrap();
    }
    let bytes = captured.expect("no checkpoint captured at iteration 2");

    let checkpoint = FlowCheckpoint::from_bytes(&bytes).unwrap();
    let mut resumed_design = small_design(7);
    let resumed = run_flow_with(
        &mut resumed_design,
        &cfg,
        FlowControl {
            resume: Some(checkpoint),
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(resumed.resumed_from, Some(2));
    assert_eq!(
        resumed.hpwl.to_bits(),
        full.hpwl.to_bits(),
        "resumed HPWL differs: {} vs {}",
        resumed.hpwl,
        full.hpwl
    );
    assert_eq!(
        resumed.density_overflow.to_bits(),
        full.density_overflow.to_bits(),
        "resumed overflow differs: {} vs {}",
        resumed.density_overflow,
        full.density_overflow
    );
    assert_eq!(resumed.route_iterations, full.route_iterations);
    assert_eq!(resumed_design.positions(), uninterrupted.positions());
}
