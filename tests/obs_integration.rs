//! Observability contract, end to end: tracing is a pure observer.
//!
//! The rdp-obs collector records spans, instants and metrics from every
//! layer of the flow, but timestamps never feed computation — so a
//! traced run must be **bitwise identical** to an untraced one, every
//! guard warning the report counts must appear in the trace, and the
//! exported artifacts must pass their own validators.

use rdp::core::{run_flow_with, FlowControl, FlowFault, PlacerPreset, RoutabilityConfig};
use rdp::gen::{generate, GenParams};
use rdp::obs::{export_jsonl, validate_trace_jsonl, Collector};

fn small_design() -> rdp::Design {
    generate(
        "obs-it",
        &GenParams {
            num_cells: 500,
            num_macros: 2,
            utilization: 0.62,
            congestion_margin: 0.85,
            seed: 11,
            ..GenParams::default()
        },
    )
}

fn run(
    design: &mut rdp::Design,
    obs: &Collector,
    fault: Option<FlowFault>,
) -> rdp::core::FlowReport {
    let ctrl = FlowControl {
        obs: obs.clone(),
        fault,
        ..Default::default()
    };
    run_flow_with(design, &RoutabilityConfig::preset(PlacerPreset::Ours), ctrl)
        .expect("flow converges")
}

/// Tracing on vs off: identical post-flow positions, HPWL and density
/// overflow down to the last bit.
#[test]
fn tracing_does_not_change_results_bitwise() {
    let mut plain = small_design();
    let mut traced = small_design();
    let r_plain = run(&mut plain, &Collector::disabled(), None);
    let r_traced = run(&mut traced, &Collector::enabled(), None);

    assert_eq!(r_plain.hpwl.to_bits(), r_traced.hpwl.to_bits());
    assert_eq!(r_plain.gp_iterations, r_traced.gp_iterations);
    assert_eq!(r_plain.route_iterations, r_traced.route_iterations);
    for (a, b) in plain.positions().iter().zip(traced.positions()) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
}

/// Every warning the report counts is mirrored as a `guard_warning`
/// instant the moment it is emitted (forced here by fault injection),
/// and rollback counts agree the same way.
#[test]
fn warning_parity_between_report_and_trace() {
    let mut design = small_design();
    let obs = Collector::enabled();
    let report = run(
        &mut design,
        &obs,
        Some(FlowFault::NanCongestionGrad { route_iter: 1 }),
    );

    let summary = validate_trace_jsonl(&export_jsonl(&obs)).expect("valid JSONL");
    assert!(
        !report.warnings.is_empty(),
        "injected fault must produce at least one warning"
    );
    assert_eq!(summary.guard_warnings, report.warnings.len() as u64);
    assert_eq!(summary.rollbacks, report.rollbacks as u64);
}

/// A traced flow covers every stage of Fig. 2 with at least one span.
#[test]
fn trace_covers_every_flow_stage() {
    let mut design = small_design();
    let obs = Collector::enabled();
    run(&mut design, &obs, None);

    let summary = validate_trace_jsonl(&export_jsonl(&obs)).expect("valid JSONL");
    for name in [
        "wirelength_gp",
        "gp_step",
        "wa_grad",
        "density_grad",
        "density_field",
        "poisson_solve",
        "route_iter",
        "route",
        "netmove",
        "gp_burst",
        "final_route",
    ] {
        assert!(
            summary.span_names.contains(name),
            "missing span `{name}`; got {:?}",
            summary.span_names
        );
    }
}

/// Convergence series are recorded once per routability iteration.
#[test]
fn convergence_series_match_iteration_count() {
    let mut design = small_design();
    let obs = Collector::enabled();
    let report = run(&mut design, &obs, None);

    let lens = obs
        .with_snapshot(|_events, registry, _dropped| {
            ["hpwl", "route_overflow", "lambda2", "density_overflow"]
                .map(|name| registry.series.get(name).map_or(0, |s| s.len()))
        })
        .expect("collector enabled");
    for (name, len) in ["hpwl", "route_overflow", "lambda2", "density_overflow"]
        .iter()
        .zip(lens)
    {
        assert_eq!(
            len, report.route_iterations,
            "series `{name}` has {len} points for {} iterations",
            report.route_iterations
        );
    }
}
