//! Property-based integration tests across the crates: arbitrary small
//! designs must always legalize cleanly, route consistently, and keep the
//! paper's invariants. (rdp-testkit harness.)

use rdp::gen::{generate, GenParams};
use rdp::legal::{check_legality, detailed_place, legalize, DetailedConfig, LegalizeConfig};
use rdp::route::GlobalRouter;
use rdp_testkit::{prop_assert, prop_assert_eq, prop_check, range, PropConfig};

type ParamTuple = (usize, usize, f64, f64, u64);

fn arb_params() -> impl rdp_testkit::Gen<Value = ParamTuple> {
    (
        range(100usize..400),
        range(0usize..3),
        range(0.3f64..0.75),
        range(0.6f64..0.95),
        range(1u64..1000),
    )
}

fn params_of((cells, macros, util, margin, seed): ParamTuple) -> GenParams {
    GenParams {
        num_cells: cells,
        num_macros: macros,
        macro_fraction: if macros == 0 { 0.0 } else { 0.15 },
        utilization: util,
        congestion_margin: margin,
        io_terminals: 6,
        high_fanout_nets: 2,
        rail_pitch: 1.0,
        seed,
        ..GenParams::default()
    }
}

/// Any generated design legalizes with zero failures and passes the
/// legality checker, and detailed placement never degrades HPWL.
#[test]
fn legalization_always_succeeds() {
    prop_check!(PropConfig::cases(12), arb_params(), |t: ParamTuple| {
        let mut d = generate("prop", &params_of(t));
        let report = legalize(&mut d, &LegalizeConfig::default());
        prop_assert_eq!(report.failed, 0);
        let check = check_legality(&d);
        prop_assert!(check.is_legal(), "violations: {:?}", check);
        let before = d.hpwl();
        let gain = detailed_place(&mut d, &DetailedConfig::default());
        prop_assert!(gain >= -1e-6);
        prop_assert!(d.hpwl() <= before + 1e-6);
        prop_assert!(check_legality(&d).is_legal());
        Ok(())
    });
}

/// Routing invariants: wirelength lower-bounded by the sum of net
/// spans, congestion map non-negative, demand non-negative.
#[test]
fn routing_invariants() {
    prop_check!(PropConfig::cases(12), arb_params(), |t: ParamTuple| {
        let d = generate("prop", &params_of(t));
        let r = GlobalRouter::default().route(&d);
        // Routed (pattern) wirelength equals the RSMT decomposition's
        // Manhattan length, which upper-bounds the sum of net HPWLs.
        let hpwl_sum: f64 = d.hpwl();
        prop_assert!(r.wirelength >= hpwl_sum * 0.99 - 1.0);
        prop_assert!(r.congestion.min() >= 0.0);
        prop_assert!(r.maps.h_demand.min() >= 0.0);
        prop_assert!(r.maps.v_demand.min() >= 0.0);
        prop_assert!(r.vias >= 0.0);
        prop_assert!(r.maps.total_overflow() >= 0.0);
        Ok(())
    });
}

/// Bookshelf round trip is exact for arbitrary generated designs.
#[test]
fn bookshelf_roundtrip() {
    prop_check!(PropConfig::cases(12), arb_params(), |t: ParamTuple| {
        let d = generate("prop", &params_of(t));
        let back = rdp::parse::read_bookshelf("prop", &rdp::parse::write_bookshelf(&d)).unwrap();
        prop_assert_eq!(back.num_cells(), d.num_cells());
        prop_assert_eq!(back.num_pins(), d.num_pins());
        prop_assert!((back.hpwl() - d.hpwl()).abs() < 1e-6 * d.hpwl().max(1.0));
        Ok(())
    });
}

/// The WA wirelength lower-bounds HPWL on generated designs at any γ.
#[test]
fn wa_bounds_hpwl() {
    prop_check!(
        PropConfig::cases(12),
        (arb_params(), range(0.1f64..8.0)),
        |(t, gamma): (ParamTuple, f64)| {
            let d = generate("prop", &params_of(t));
            let wa = rdp::core::WaModel::new(gamma).wirelength(&d);
            prop_assert!(wa <= d.hpwl() + 1e-6, "wa {} > hpwl {}", wa, d.hpwl());
            Ok(())
        }
    );
}
