//! Property-based integration tests across the crates: arbitrary small
//! designs must always legalize cleanly, route consistently, and keep the
//! paper's invariants.

use proptest::prelude::*;
use rdp::gen::{generate, GenParams};
use rdp::legal::{check_legality, detailed_place, legalize, DetailedConfig, LegalizeConfig};
use rdp::route::GlobalRouter;

fn arb_params() -> impl Strategy<Value = GenParams> {
    (
        100usize..400,
        0usize..3,
        0.3f64..0.75,
        0.6f64..0.95,
        1u64..1000,
    )
        .prop_map(|(cells, macros, util, margin, seed)| GenParams {
            num_cells: cells,
            num_macros: macros,
            macro_fraction: if macros == 0 { 0.0 } else { 0.15 },
            utilization: util,
            congestion_margin: margin,
            io_terminals: 6,
            high_fanout_nets: 2,
            rail_pitch: 1.0,
            seed,
            ..GenParams::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated design legalizes with zero failures and passes the
    /// legality checker, and detailed placement never degrades HPWL.
    #[test]
    fn legalization_always_succeeds(params in arb_params()) {
        let mut d = generate("prop", &params);
        let report = legalize(&mut d, &LegalizeConfig::default());
        prop_assert_eq!(report.failed, 0);
        let check = check_legality(&d);
        prop_assert!(check.is_legal(), "violations: {:?}", check);
        let before = d.hpwl();
        let gain = detailed_place(&mut d, &DetailedConfig::default());
        prop_assert!(gain >= -1e-6);
        prop_assert!(d.hpwl() <= before + 1e-6);
        prop_assert!(check_legality(&d).is_legal());
    }

    /// Routing invariants: wirelength lower-bounded by the sum of net
    /// spans, congestion map non-negative, demand non-negative.
    #[test]
    fn routing_invariants(params in arb_params()) {
        let d = generate("prop", &params);
        let r = GlobalRouter::default().route(&d);
        // Routed (pattern) wirelength equals the RSMT decomposition's
        // Manhattan length, which upper-bounds the sum of net HPWLs.
        let hpwl_sum: f64 = d.hpwl();
        prop_assert!(r.wirelength >= hpwl_sum * 0.99 - 1.0);
        prop_assert!(r.congestion.min() >= 0.0);
        prop_assert!(r.maps.h_demand.min() >= 0.0);
        prop_assert!(r.maps.v_demand.min() >= 0.0);
        prop_assert!(r.vias >= 0.0);
        prop_assert!(r.maps.total_overflow() >= 0.0);
    }

    /// Bookshelf round trip is exact for arbitrary generated designs.
    #[test]
    fn bookshelf_roundtrip(params in arb_params()) {
        let d = generate("prop", &params);
        let back = rdp::parse::read_bookshelf("prop", &rdp::parse::write_bookshelf(&d)).unwrap();
        prop_assert_eq!(back.num_cells(), d.num_cells());
        prop_assert_eq!(back.num_pins(), d.num_pins());
        prop_assert!((back.hpwl() - d.hpwl()).abs() < 1e-6 * d.hpwl().max(1.0));
    }

    /// The WA wirelength lower-bounds HPWL on generated designs at any γ.
    #[test]
    fn wa_bounds_hpwl(params in arb_params(), gamma in 0.1f64..8.0) {
        let d = generate("prop", &params);
        let wa = rdp::core::WaModel::new(gamma).wirelength(&d);
        prop_assert!(wa <= d.hpwl() + 1e-6, "wa {} > hpwl {}", wa, d.hpwl());
    }
}
