//! Integration tests of the `rdp` CLI binary.

use std::process::Command;

fn rdp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdp"))
}

#[test]
fn suite_lists_twenty_designs() {
    let out = rdp().arg("suite").output().expect("run rdp suite");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("des_perf_1"));
    assert!(text.contains("superblue19"));
    // header + 20 designs
    assert_eq!(text.lines().count(), 21, "{text}");
}

#[test]
fn stats_works_on_suite_design() {
    let out = rdp().args(["stats", "fft_a"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("design `fft_a`"));
    assert!(text.contains("routing:"));
}

#[test]
fn unknown_design_fails_with_message() {
    let out = rdp().args(["stats", "nonexistent"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("nonexistent"), "{err}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = rdp().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn generate_convert_roundtrip_via_cli() {
    let dir = std::env::temp_dir().join("rdp_cli_test");
    std::fs::remove_dir_all(&dir).ok();

    let out = rdp()
        .args([
            "generate",
            "pci_bridge32_b",
            "--out",
            dir.to_str().unwrap(),
            "--format",
            "bookshelf",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("pci_bridge32_b.nodes").exists());
    assert!(dir.join("pci_bridge32_b.aux").exists());

    // Load the bundle back through the CLI and check stats.
    let input = format!("bookshelf:{}:pci_bridge32_b", dir.display());
    let out = rdp().args(["stats", &input]).output().expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pci_bridge32_b"), "{text}");

    // Convert to LEF/DEF.
    let out = rdp()
        .args([
            "convert",
            &input,
            "--out",
            dir.to_str().unwrap(),
            "--format",
            "lefdef",
        ])
        .output()
        .expect("run convert");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("pci_bridge32_b.lef").exists());
    assert!(dir.join("pci_bridge32_b.def").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn render_writes_svg() {
    let svg_path = std::env::temp_dir().join("rdp_cli_test.svg");
    let out = rdp()
        .args(["render", "fft_a", "--out", svg_path.to_str().unwrap()])
        .output()
        .expect("run render");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));
    std::fs::remove_file(&svg_path).ok();
}

/// `--predict` (and its tuning flags) round-trip through `rdp place`: the
/// run completes and the metrics carry the substitution counter.
#[test]
fn place_with_predict_flags_substitutes_and_reports() {
    let dir = std::env::temp_dir().join("rdp_cli_predict_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let metrics = dir.join("metrics.json");
    let report = dir.join("report.html");

    let out = rdp()
        .args([
            "place",
            "fft_a",
            "--fast",
            "--max-route-iters",
            "4",
            "--predict",
            "--predict-warmup",
            "1",
            "--predict-drift-tol",
            "0.6",
            "--incremental-route",
            "--incremental-resync-every",
            "8",
            "--incremental-drift-frac",
            "0.4",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--report-out",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("run place");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = rdp::obs::json::parse(&std::fs::read_to_string(&metrics).unwrap())
        .expect("metrics file is valid JSON");
    let counters = v.get("counters").expect("counters present");
    assert!(
        counters
            .get("predict_substituted")
            .is_some_and(|c| c.as_f64().is_some_and(|n| n >= 1.0)),
        "predict_substituted counter missing or zero: {counters:?}"
    );
    assert!(counters.get("predict_fits").is_some());
    // The validated HTML report charts the prediction-accuracy series.
    let html = std::fs::read_to_string(&report).expect("report written");
    assert!(
        html.contains("data-series=\"predict_drift\""),
        "report must chart predicted-vs-routed drift"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed or inconsistent predictor/incremental flags are rejected
/// with a message naming the flag — on `place` and on `submit` (the
/// client validates before any connection is attempted).
#[test]
fn predict_flag_misuse_is_rejected() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["place", "fft_a", "--predict", "--predict-drift-tol", "abc"],
            "--predict-drift-tol",
        ),
        (
            &["place", "fft_a", "--predict-warmup", "2"],
            "--predict-warmup",
        ),
        (
            &["place", "fft_a", "--predict", "--predict-warmup", "0"],
            "--predict-warmup",
        ),
        (
            &["place", "fft_a", "--incremental-resync-every", "0"],
            "--incremental-resync-every",
        ),
        (
            &["place", "fft_a", "--incremental-drift-frac", "wide"],
            "--incremental-drift-frac",
        ),
        (
            &[
                "submit",
                "127.0.0.1:1",
                "fft_a",
                "--predict",
                "--predict-warmup",
                "xyz",
            ],
            "--predict-warmup",
        ),
        (
            &[
                "submit",
                "127.0.0.1:1",
                "fft_a",
                "--incremental-drift-frac",
                "NaNny",
            ],
            "--incremental-drift-frac",
        ),
    ];
    for (args, needle) in cases {
        let out = rdp().args(*args).output().expect("run");
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

#[test]
fn place_with_trace_flags_writes_valid_artifacts() {
    let dir = std::env::temp_dir().join("rdp_cli_obs_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let jsonl = dir.join("run.jsonl");
    let chrome = dir.join("run_chrome.json");
    let metrics = dir.join("run_metrics.json");

    // Smallest suite design keeps this e2e check fast; --legalize makes
    // the trace cover legalization and detailed placement too.
    let out = rdp()
        .args([
            "place",
            "fft_a",
            "--legalize",
            "--trace-out",
            jsonl.to_str().unwrap(),
            "--chrome-trace",
            chrome.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--profile",
        ])
        .output()
        .expect("run place");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The --profile stage table ends up on stdout with the key stages.
    assert!(text.contains("stage"), "{text}");
    assert!(text.contains("gp_step"), "{text}");
    assert!(text.contains("legalize"), "{text}");

    let summary = rdp::obs::validate_trace_jsonl(&std::fs::read_to_string(&jsonl).unwrap())
        .expect("trace-out is schema-valid JSONL");
    assert!(summary.spans > 0);
    assert!(summary.span_names.contains("final_route"));
    assert!(summary.span_names.contains("legalize"));
    assert!(summary.span_names.contains("detailed_place"));

    let n = rdp::obs::validate_chrome_trace(&std::fs::read_to_string(&chrome).unwrap())
        .expect("chrome trace is structurally valid");
    assert!(n > 0);

    let v = rdp::obs::json::parse(&std::fs::read_to_string(&metrics).unwrap())
        .expect("metrics file is valid JSON");
    assert!(v.get("counters").is_some());
    assert!(v.get("series").is_some());

    std::fs::remove_dir_all(&dir).ok();
}
