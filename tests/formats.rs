//! Integration tests of the file formats: a design survives a disk round
//! trip and then behaves identically in the placement flow.

use rdp::core::GlobalPlacer;
use rdp::gen::{generate, GenParams};
use rdp::parse::{load_bookshelf, read_lefdef, save_bookshelf, write_bookshelf, write_lefdef};

fn sample(seed: u64) -> rdp::Design {
    generate(
        "fmt",
        &GenParams {
            num_cells: 300,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.55,
            rail_pitch: 1.0,
            io_terminals: 6,
            seed,
            ..GenParams::default()
        },
    )
}

#[test]
fn bookshelf_roundtrip_preserves_placement_behavior() {
    let original = sample(11);
    let files = rdp::parse::write_bookshelf(&original);
    let mut reparsed = rdp::parse::read_bookshelf("fmt", &files).expect("parse");

    // The parsed design places identically to the original.
    let mut orig_copy = original.clone();
    let s1 = GlobalPlacer::default().place(&mut orig_copy).unwrap();
    let s2 = GlobalPlacer::default().place(&mut reparsed).unwrap();
    assert_eq!(s1.iterations, s2.iterations);
    assert!((s1.hpwl - s2.hpwl).abs() < 1e-6 * s1.hpwl.max(1.0));
}

#[test]
fn bookshelf_disk_roundtrip() {
    let original = sample(12);
    let dir = std::env::temp_dir().join("rdp_it_bookshelf");
    save_bookshelf(&original, &dir, "fmt").expect("save");
    let loaded = load_bookshelf(&dir, "fmt").expect("load");
    assert_eq!(loaded.num_cells(), original.num_cells());
    assert_eq!(loaded.num_nets(), original.num_nets());
    assert!((loaded.hpwl() - original.hpwl()).abs() < 1e-6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lefdef_roundtrip_preserves_routing_environment() {
    let original = sample(13);
    let parsed = read_lefdef(&write_lefdef(&original)).expect("parse");
    assert_eq!(parsed.routing().gx, original.routing().gx);
    assert_eq!(parsed.routing().gy, original.routing().gy);
    assert_eq!(
        parsed.routing().num_layers(),
        original.routing().num_layers()
    );
    for (a, b) in original
        .routing()
        .layers
        .iter()
        .zip(&parsed.routing().layers)
    {
        assert_eq!(a.dir, b.dir);
        assert!((a.capacity - b.capacity).abs() < 1e-9);
    }
    // Routed congestion of the parsed design matches closely (positions
    // differ by < 1/1000 µm).
    let ra = rdp::route::GlobalRouter::default().route(&original);
    let rb = rdp::route::GlobalRouter::default().route(&parsed);
    assert!((ra.wirelength - rb.wirelength).abs() / ra.wirelength < 1e-3);
}

#[test]
fn formats_cross_agree() {
    let original = sample(14);
    let via_bookshelf = rdp::parse::read_bookshelf("fmt", &write_bookshelf(&original)).unwrap();
    let via_def = read_lefdef(&write_lefdef(&original)).unwrap();
    assert_eq!(via_bookshelf.num_pins(), via_def.num_pins());
    assert!((via_bookshelf.hpwl() - via_def.hpwl()).abs() / original.hpwl() < 1e-3);
}
