//! Integration tests for the scenario-matrix harness (`rdp::matrix`):
//! degenerate inputs complete the flow, failures are named, and the gate
//! catches violations instead of passing silently.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rdp::core::{run_flow_with, FlowControl, RoutabilityConfig};
use rdp::matrix::{run_matrix, MatrixConfig, MatrixFailure};
use rdp::{gen::scenario_by_name, gen::Scale, PlacerPreset};

/// The degenerate survival classes complete a full matrix pass: no flow
/// errors, no divergence, no telemetry failures.
#[test]
fn degenerate_classes_survive_the_matrix() {
    let cfg = MatrixConfig {
        classes: Some(
            [
                "single_cell",
                "all_fixed",
                "full_die_net",
                "coincident_pins",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ),
        ..MatrixConfig::default()
    };
    let report = run_matrix(&cfg).expect("harness runs");
    let failures: Vec<String> = report.failures().map(|f| f.to_string()).collect();
    assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    assert_eq!(report.outcomes.len(), 4);
    for o in &report.outcomes {
        assert!(!o.ordering_gated, "{} should be survival-only", o.name);
        assert_eq!(o.presets.len(), 4, "{}: a column errored", o.name);
    }
    // The zero-movable design must take the degraded path: no iterations,
    // and a warning saying so.
    let all_fixed = report
        .outcomes
        .iter()
        .find(|o| o.name == "all_fixed")
        .unwrap();
    for p in &all_fixed.presets {
        assert_eq!(p.route_iterations, 0);
        assert!(p.warnings >= 1, "degraded mode must warn");
    }
}

/// `run_flow` on each hand-built degenerate design never panics and never
/// diverges, at any preset.
#[test]
fn degenerate_designs_run_flow_without_panic_or_divergence() {
    for name in [
        "single_cell",
        "all_fixed",
        "full_die_net",
        "coincident_pins",
    ] {
        let scenario = scenario_by_name(name).expect("known scenario");
        for preset in [
            PlacerPreset::Xplace,
            PlacerPreset::XplaceRoute,
            PlacerPreset::Ours,
        ] {
            let mut d = scenario.build(Scale::Small);
            let cfg = RoutabilityConfig::preset_fast(preset);
            let out = catch_unwind(AssertUnwindSafe(|| {
                run_flow_with(&mut d, &cfg, FlowControl::default())
            }));
            let result = out.unwrap_or_else(|_| panic!("{name} panicked under {preset:?}"));
            let flow = result.unwrap_or_else(|e| panic!("{name} failed under {preset:?}: {e}"));
            assert!(flow.hpwl.is_finite(), "{name}: non-finite HPWL");
        }
    }
}

/// One ordering-gated class passes end-to-end at the fast tier, records
/// telemetry for every preset, and reports the Table-1 gate.
#[test]
fn gated_class_passes_fast_tier() {
    let cfg = MatrixConfig {
        classes: Some(vec!["single_row_core".to_string()]),
        ..MatrixConfig::default()
    };
    let report = run_matrix(&cfg).expect("harness runs");
    let failures: Vec<String> = report.failures().map(|f| f.to_string()).collect();
    assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    let o = &report.outcomes[0];
    assert!(o.ordering_gated);
    assert_eq!(o.presets.len(), 4);
    // The routability columns must actually have exercised the loop —
    // otherwise the ordering gate compares identical placements.
    for p in &o.presets {
        if p.preset != PlacerPreset::Xplace {
            assert!(p.route_iterations > 0, "{} skipped the loop", p.label);
        }
    }
    // Only the predict column substitutes predicted maps.
    for p in &o.presets {
        if p.label != "ours+predict" {
            assert_eq!(
                p.predicted_iterations, 0,
                "{} must route every iter",
                p.label
            );
        }
    }
    let table = report.table();
    assert!(table.contains("single_row_core"), "table lists the class");
    assert!(
        table.contains("ours+predict"),
        "table lists the predict column"
    );
    assert!(table.contains("ordering"), "table shows the gate kind");
}

/// Filtering on an unknown class is a harness error naming the class, not
/// a silent empty pass.
#[test]
fn unknown_class_is_a_named_harness_error() {
    let cfg = MatrixConfig {
        classes: Some(vec!["no_such_scenario".to_string()]),
        ..MatrixConfig::default()
    };
    let err = run_matrix(&cfg).expect_err("must not silently pass");
    assert!(
        err.contains("no_such_scenario"),
        "error names the class: {err}"
    );
}

/// Every failure variant names its scenario in both the accessor and the
/// rendered message — the gate can never fail anonymously.
#[test]
fn failures_name_their_scenario() {
    let failures = [
        MatrixFailure::RoundTrip {
            scenario: "klass".into(),
            detail: "drift".into(),
        },
        MatrixFailure::FlowError {
            scenario: "klass".into(),
            preset: "ours",
            detail: "diverged".into(),
        },
        MatrixFailure::EmptyCongestionFrames {
            scenario: "klass".into(),
            preset: "ours",
        },
        MatrixFailure::EmptySeries {
            scenario: "klass".into(),
            preset: "ours",
            series: "hpwl",
        },
        MatrixFailure::PredictorIdle {
            scenario: "klass".into(),
        },
        MatrixFailure::OrderingViolation {
            scenario: "klass".into(),
            better: "ours+predict",
            worse: "xplace-route",
            better_drvs: 9.0,
            worse_drvs: 1.0,
            tolerance: 0.15,
        },
    ];
    for f in &failures {
        assert_eq!(f.scenario(), "klass");
        assert!(
            f.to_string().contains("klass"),
            "message must name the class: {f}"
        );
    }
    // Empty-telemetry failures are phrased as what they are: a recording
    // bug, not a QoR problem.
    assert!(failures[2].to_string().contains("no congestion frame"));
    assert!(failures[3].to_string().contains("series `hpwl` is empty"));
}

/// A matrix run with a run directory writes `rdp report`-compatible
/// artifacts per (scenario, preset).
#[test]
fn run_dir_writes_trace_and_metrics() {
    let root = std::env::temp_dir().join(format!("rdp_matrix_test_{}", std::process::id()));
    let cfg = MatrixConfig {
        classes: Some(vec!["single_cell".to_string()]),
        run_dir: Some(root.clone()),
        ..MatrixConfig::default()
    };
    let report = run_matrix(&cfg).expect("harness runs");
    assert!(report.passed());
    for preset in ["xplace", "xplace-route", "ours", "ours+predict"] {
        let dir = root.join("single_cell").join(preset);
        assert!(dir.join("trace.jsonl").is_file(), "{}", dir.display());
        assert!(dir.join("metrics.json").is_file(), "{}", dir.display());
    }
    std::fs::remove_dir_all(&root).ok();
}
