//! End-to-end integration tests: generate → place → legalize → evaluate
//! across the three placer presets.

use rdp::core::{PlacerPreset, RoutabilityConfig};
use rdp::gen::{generate, GenParams};
use rdp::{place_and_evaluate, EvalConfig};

fn congested(seed: u64) -> rdp::Design {
    generate(
        "it",
        &GenParams {
            num_cells: 500,
            num_macros: 2,
            macro_fraction: 0.15,
            utilization: 0.6,
            congestion_margin: 0.75,
            rail_pitch: 1.0,
            io_terminals: 8,
            seed,
            ..GenParams::default()
        },
    )
}

#[test]
fn full_pipeline_produces_legal_placement_and_metrics() {
    let mut d = congested(1);
    let report = place_and_evaluate(
        &mut d,
        &RoutabilityConfig::preset(PlacerPreset::Ours),
        &EvalConfig::default(),
    )
    .unwrap();
    assert!(report.eval.drwl > 0.0);
    assert!(report.eval.drvias > 0.0);
    assert!(report.eval.drvs >= 0.0);
    assert_eq!(report.legal.failed, 0);
    assert!(rdp::legal::check_legality(&d).is_legal());
    assert!(report.flow.route_iterations >= 1);
}

#[test]
fn pipeline_is_deterministic() {
    let mut d1 = congested(2);
    let mut d2 = congested(2);
    let cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    let r1 = place_and_evaluate(&mut d1, &cfg, &EvalConfig::default()).unwrap();
    let r2 = place_and_evaluate(&mut d2, &cfg, &EvalConfig::default()).unwrap();
    assert_eq!(d1.positions(), d2.positions());
    assert_eq!(r1.eval.drvs, r2.eval.drvs);
    assert_eq!(r1.eval.drwl, r2.eval.drwl);
}

#[test]
fn routability_flow_does_not_hurt_routing_on_congested_design() {
    // The miniature Table I claim: Ours must not route meaningfully worse
    // than the wirelength-only baseline on a congested design.
    let mut d_x = congested(3);
    let mut d_o = congested(3);
    let rx = place_and_evaluate(
        &mut d_x,
        &RoutabilityConfig::preset(PlacerPreset::Xplace),
        &EvalConfig::default(),
    )
    .unwrap();
    let ro = place_and_evaluate(
        &mut d_o,
        &RoutabilityConfig::preset(PlacerPreset::Ours),
        &EvalConfig::default(),
    )
    .unwrap();
    assert!(
        ro.eval.drv_overflow <= rx.eval.drv_overflow * 1.1 + 10.0,
        "ours {} vs xplace {}",
        ro.eval.drv_overflow,
        rx.eval.drv_overflow
    );
    // Wirelength stays comparable (the paper's DRWL ≈ 1.00 claim).
    assert!(
        ro.eval.drwl <= rx.eval.drwl * 1.25,
        "ours drwl {} vs xplace {}",
        ro.eval.drwl,
        rx.eval.drwl
    );
}

#[test]
fn xplace_preset_skips_routability_machinery() {
    let mut d = congested(4);
    let r = place_and_evaluate(
        &mut d,
        &RoutabilityConfig::preset(PlacerPreset::Xplace),
        &EvalConfig::default(),
    )
    .unwrap();
    assert_eq!(r.flow.route_iterations, 0);
    assert!(r.flow.inflation_ratios.is_none());
    assert!(r.flow.log.is_empty());
}

#[test]
fn flow_log_is_consistent() {
    let mut d = congested(5);
    let r = place_and_evaluate(
        &mut d,
        &RoutabilityConfig::preset(PlacerPreset::Ours),
        &EvalConfig::default(),
    )
    .unwrap();
    assert_eq!(r.flow.log.len(), r.flow.route_iterations);
    for (i, l) in r.flow.log.iter().enumerate() {
        assert_eq!(l.iter, i + 1);
        assert!(l.overflow >= 0.0);
        assert!(l.hpwl > 0.0);
        assert!(l.lambda2 >= 0.0);
    }
    // Inflation ratios must be within the paper's clamp bounds.
    let ratios = r.flow.inflation_ratios.expect("ours inflates");
    assert!(ratios.iter().all(|&x| (0.9..=2.0).contains(&x) || x == 1.0));
}

#[test]
fn suite_designs_generate_and_have_declared_structure() {
    for entry in rdp::gen::ispd2015_suite().iter().take(3) {
        let d = rdp::gen::generate(entry.name, &entry.params);
        assert_eq!(d.name(), entry.name);
        assert_eq!(d.movable_cells().count(), entry.params.num_cells);
        assert_eq!(d.macros().count(), entry.params.num_macros);
        assert!(!d.rails().is_empty());
    }
}
