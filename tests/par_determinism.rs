//! Thread-count invariance: every parallel kernel must produce results
//! **bit-identical** to its serial evaluation, for any worker count.
//!
//! This is the workspace's parallelism contract (see `crates/par`): fixed
//! chunking, per-chunk scratch, and ordered reduction make the FP
//! operation sequence independent of how many threads execute it. The
//! kernel tests compare explicit 1-thread vs 4-thread pools; the
//! end-to-end test flips the process-global pool (`RDP_THREADS`
//! override) around whole placements.

use rdp::core::{DensityModel, GlobalPlacer, WaModel, WaScratch};
use rdp::db::Point;
use rdp::gen::{generate, GenParams};
use rdp::par::{set_global_threads, Pool};
use rdp::poisson::PoissonSolver;
use rdp::route::{rudy_map_with, GlobalRouter};

fn test_design() -> rdp::db::Design {
    generate(
        "pardet",
        &GenParams {
            num_cells: 600,
            num_macros: 1,
            macro_fraction: 0.1,
            utilization: 0.6,
            io_terminals: 12,
            high_fanout_nets: 3,
            rail_pitch: 1.0,
            seed: 0x7a11,
            ..GenParams::default()
        },
    )
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn point_bits(v: &[Point]) -> Vec<(u64, u64)> {
    v.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect()
}

#[test]
fn wa_wirelength_and_gradient_thread_invariant() {
    let design = test_design();
    let wa = WaModel::new(2.0);
    let serial = Pool::serial();
    let par = Pool::new(4);

    assert_eq!(
        wa.wirelength_with(&design, serial).to_bits(),
        wa.wirelength_with(&design, par).to_bits(),
        "WA wirelength differs between 1 and 4 threads"
    );

    let mut g1 = vec![Point::default(); design.num_cells()];
    let mut g4 = vec![Point::default(); design.num_cells()];
    let mut scratch = WaScratch::new();
    wa.accumulate_gradient_with(&design, &mut g1, serial, &mut scratch);
    wa.accumulate_gradient_with(&design, &mut g4, par, &mut scratch);
    assert_eq!(
        point_bits(&g1),
        point_bits(&g4),
        "WA gradient differs between 1 and 4 threads"
    );
}

#[test]
fn density_field_and_gradient_thread_invariant() {
    let design = test_design();
    let model = DensityModel::new(&design);
    let serial = Pool::serial();
    let par = Pool::new(4);

    let f1 = model.compute_with(&design, None, None, 0.9, serial);
    let f4 = model.compute_with(&design, None, None, 0.9, par);
    assert_eq!(bits(f1.density.as_slice()), bits(f4.density.as_slice()));
    assert_eq!(bits(f1.psi.as_slice()), bits(f4.psi.as_slice()));
    assert_eq!(bits(f1.ex.as_slice()), bits(f4.ex.as_slice()));
    assert_eq!(bits(f1.ey.as_slice()), bits(f4.ey.as_slice()));
    assert_eq!(f1.penalty.to_bits(), f4.penalty.to_bits());
    assert_eq!(f1.overflow.to_bits(), f4.overflow.to_bits());

    let mut g1 = vec![Point::default(); design.num_cells()];
    let mut g4 = vec![Point::default(); design.num_cells()];
    model.accumulate_gradient_with(&design, &f1, None, 1.7, &mut g1, serial);
    model.accumulate_gradient_with(&design, &f4, None, 1.7, &mut g4, par);
    assert_eq!(point_bits(&g1), point_bits(&g4));
}

#[test]
fn poisson_solution_thread_invariant() {
    let solver = PoissonSolver::new(64, 32, 120.0, 60.0);
    let rho: Vec<f64> = (0..64 * 32)
        .map(|i| (((i * 37) % 23) as f64) - 11.0)
        .collect();
    let s1 = solver.solve_with(&rho, Pool::serial());
    for threads in [2, 4, 7] {
        let sn = solver.solve_with(&rho, Pool::new(threads));
        assert_eq!(bits(&s1.psi), bits(&sn.psi), "psi @ {threads} threads");
        assert_eq!(bits(&s1.ex), bits(&sn.ex), "ex @ {threads} threads");
        assert_eq!(bits(&s1.ey), bits(&sn.ey), "ey @ {threads} threads");
    }
}

/// The vectorized 2-D DCT (twiddle-table FFT butterflies, tiled
/// transposes) parallelizes over rows/columns; the transform must stay
/// bit-identical across pool sizes.
#[test]
fn dct_2d_thread_invariant() {
    use rdp::poisson::dct2_2d_with;
    let (nx, ny) = (128, 64);
    let data: Vec<f64> = (0..nx * ny)
        .map(|i| (((i * 131) % 97) as f64) / 9.7 - 5.0)
        .collect();
    let c1 = dct2_2d_with(&data, nx, ny, Pool::serial());
    for threads in [2, 4] {
        let cn = dct2_2d_with(&data, nx, ny, Pool::new(threads));
        assert_eq!(bits(&c1), bits(&cn), "dct2_2d @ {threads} threads");
    }
}

/// Reusing a `DctScratch` (cached quarter-wave and twiddle tables) must
/// be bitwise indistinguishable from fresh scratch: table caching is a
/// pure allocation optimization, never a numeric one.
#[test]
fn dct_scratch_reuse_is_bitwise_stable() {
    use rdp::poisson::{dct2_with, idct_with, idxst_with, DctScratch};
    let n = 256;
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();

    let mut reused = DctScratch::new();
    // Warm the tables at a different size first, then at `n`.
    let mut warm = vec![0.0; 64];
    dct2_with(&x[..64], &mut warm, &mut reused);

    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    dct2_with(&x, &mut a, &mut reused);
    dct2_with(&x, &mut b, &mut DctScratch::new());
    assert_eq!(bits(&a), bits(&b), "dct2 scratch reuse");

    idct_with(&x, &mut a, &mut reused);
    idct_with(&x, &mut b, &mut DctScratch::new());
    assert_eq!(bits(&a), bits(&b), "idct scratch reuse");

    idxst_with(&x, &mut a, &mut reused);
    idxst_with(&x, &mut b, &mut DctScratch::new());
    assert_eq!(bits(&a), bits(&b), "idxst scratch reuse");
}

/// The lane-chunked WA kernels differ from the scalar reference
/// (`wirelength::reference`) only by summation order and the ≈2-ulp
/// `fast_exp`, so on a real design the totals must agree to a tight
/// relative tolerance — while the lane result itself stays bitwise
/// thread-invariant (checked above).
#[test]
fn wa_lanes_track_scalar_reference() {
    use rdp::core::wirelength::reference;
    use rdp::db::NetId;
    let design = test_design();
    let gamma = 2.0;
    let wa = WaModel::new(gamma);

    let mut ref_total = 0.0;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for ni in 0..design.num_nets() {
        let net = design.net(NetId::from_index(ni));
        if net.pins.len() < 2 {
            continue;
        }
        xs.clear();
        ys.clear();
        for &p in &net.pins {
            let pos = design.pin_position(p);
            xs.push(pos.x);
            ys.push(pos.y);
        }
        ref_total += (reference::wa_1d(&xs, gamma) + reference::wa_1d(&ys, gamma)) * net.weight;
    }

    let lanes = wa.wirelength_with(&design, Pool::serial());
    let rel = (lanes - ref_total).abs() / ref_total.abs().max(1.0);
    assert!(
        rel < 1e-12,
        "lane WA {lanes} vs scalar reference {ref_total} (rel {rel:e})"
    );
}

#[test]
fn rudy_map_thread_invariant() {
    let design = test_design();
    let grid = design.gcell_grid();
    let m1 = rudy_map_with(&design, &grid, Pool::serial());
    let m4 = rudy_map_with(&design, &grid, Pool::new(4));
    assert_eq!(bits(m1.as_slice()), bits(m4.as_slice()));
}

/// The route and full global placement use the process-global pool, so
/// this test flips it around complete runs. Safe even under the parallel
/// test harness: every kernel is thread-count invariant, so concurrent
/// tests observing the flipped global still produce identical results.
#[test]
fn route_and_placement_thread_invariant_end_to_end() {
    let route_of = |d: &rdp::db::Design| GlobalRouter::default().route(d);

    set_global_threads(1);
    let mut d1 = test_design();
    let stats1 = GlobalPlacer::default().place(&mut d1).unwrap();
    let r1 = route_of(&d1);

    set_global_threads(4);
    let mut d4 = test_design();
    let stats4 = GlobalPlacer::default().place(&mut d4).unwrap();
    let r4 = route_of(&d4);
    set_global_threads(1);

    assert_eq!(stats1.iterations, stats4.iterations);
    assert_eq!(
        stats1.hpwl.to_bits(),
        stats4.hpwl.to_bits(),
        "post-GP HPWL differs between 1 and 4 threads"
    );
    assert_eq!(
        stats1.overflow.to_bits(),
        stats4.overflow.to_bits(),
        "post-GP overflow differs between 1 and 4 threads"
    );
    assert_eq!(d1.positions(), d4.positions());

    assert_eq!(r1.wirelength.to_bits(), r4.wirelength.to_bits());
    assert_eq!(r1.vias.to_bits(), r4.vias.to_bits());
    assert_eq!(
        bits(r1.maps.h_demand.as_slice()),
        bits(r4.maps.h_demand.as_slice())
    );
    assert_eq!(
        bits(r1.maps.v_demand.as_slice()),
        bits(r4.maps.v_demand.as_slice())
    );
    assert_eq!(
        bits(r1.congestion.as_slice()),
        bits(r4.congestion.as_slice())
    );
}
