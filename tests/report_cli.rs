//! Integration tests of the `rdp report` / `rdp diff` subcommands and the
//! `--run-dir` capture flag.

use std::path::{Path, PathBuf};
use std::process::Command;

fn rdp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdp"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// A small hand-written run: `rdp diff` must work on any directory with
/// a schema-valid metrics.json, not only ones the CLI produced.
fn write_run(dir: &Path, hpwl: f64, overflow: f64) {
    std::fs::create_dir_all(dir).expect("mkdir run");
    let metrics = format!(
        r#"{{
  "counters": {{ "rollbacks": 1 }},
  "gauges": {{ "final_hpwl": {hpwl}, "final_overflow": {overflow} }},
  "series": {{ "hpwl": [[0, {}], [1, {hpwl}]] }}
}}
"#,
        hpwl * 1.2
    );
    std::fs::write(dir.join("metrics.json"), metrics).expect("write metrics");
}

#[test]
fn diff_identical_runs_exits_zero() {
    let dir = scratch("rdp_diff_identical");
    let (a, b) = (dir.join("a"), dir.join("b"));
    write_run(&a, 1000.0, 0.02);
    write_run(&b, 1000.0, 0.02);

    let out = rdp()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no regression"), "{text}");
    assert!(!text.contains("REGRESSION"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_perturbed_run_exits_nonzero_naming_metric() {
    let dir = scratch("rdp_diff_perturbed");
    let (a, b) = (dir.join("a"), dir.join("b"));
    write_run(&a, 1000.0, 0.02);
    // 3% HPWL regression — well past the 0.5% default QoR tolerance.
    write_run(&b, 1030.0, 0.02);

    let out = rdp()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("gauge/final_hpwl"), "{err}");

    // Widening the tolerance past the delta turns the same pair green.
    let out = rdp()
        .args([
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--qor-tol",
            "0.05",
        ])
        .output()
        .expect("run diff");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_hostile_input_is_a_clean_error() {
    let dir = scratch("rdp_diff_hostile");
    let (a, b) = (dir.join("a"), dir.join("b"));
    write_run(&a, 1000.0, 0.02);

    // Truncated metrics document: must exit non-zero with a parse error
    // (typed RdpError::Parse inside), never a panic.
    std::fs::create_dir_all(&b).unwrap();
    std::fs::write(b.join("metrics.json"), "{ \"gauges\": { \"final_h").unwrap();
    let out = rdp()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    // A truncated trace next to a valid metrics file must fail the same way.
    write_run(&b, 1000.0, 0.02);
    std::fs::write(b.join("trace.jsonl"), "{\"type\":\"span\",\"name\"").unwrap();
    let out = rdp()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_dir_capture_then_report_and_self_diff() {
    let dir = scratch("rdp_run_dir_e2e");
    let run_a = dir.join("a");
    let run_b = dir.join("b");

    // Same design, same seed, twice: the observability layer must not
    // perturb the computation, so the two runs' QoR must diff to zero.
    for run in [&run_a, &run_b] {
        let out = rdp()
            .args(["place", "fft_a", "--run-dir", run.to_str().unwrap()])
            .output()
            .expect("run place");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(run.join("metrics.json").exists());
        assert!(run.join("trace.jsonl").exists());
    }

    let out = rdp()
        .args(["diff", run_a.to_str().unwrap(), run_b.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(
        out.status.success(),
        "same-seed runs must not diff: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `rdp report` renders the captured run into self-validated HTML.
    let out = rdp()
        .args(["report", run_a.to_str().unwrap()])
        .output()
        .expect("run report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(run_a.join("report.html")).expect("report written");
    assert!(html.contains("<html"));
    let lower = html.to_lowercase();
    assert!(!lower.contains("http://") && !lower.contains("https://"));

    std::fs::remove_dir_all(&dir).ok();
}
