//! Integration tests for the learned congestion fast-path (`rdp-predict`
//! wired into the routability flow):
//!
//! * the predictor-enabled flow is **bitwise thread-invariant** — the
//!   whole determinism contract extends through feature extraction, the
//!   RLS fit, and prediction;
//! * the drift gate catches an injected congestion regime shift and falls
//!   back to full routing;
//! * a flow killed mid-warmup and resumed from its checkpoint reproduces
//!   the uninterrupted run bit-for-bit (predictor state rides the
//!   checkpoint);
//! * degenerate scenario classes complete with the predictor on.

use rdp::core::{
    run_flow_with, FlowCheckpoint, FlowControl, FlowFault, PlacerPreset, PredictConfig,
    RoutabilityConfig,
};
use rdp::gen::{generate, scenario_by_name, GenParams, Scale};
use rdp::par::set_global_threads;
use rdp_testkit::{FaultExpectation, FaultKind, FaultPlan};

fn test_design(seed: u64) -> rdp::db::Design {
    generate(
        "predict",
        &GenParams {
            num_cells: 400,
            num_macros: 2,
            macro_fraction: 0.12,
            utilization: 0.62,
            congestion_margin: 0.8,
            io_terminals: 8,
            high_fanout_nets: 2,
            rail_pitch: 1.0,
            seed,
            ..GenParams::default()
        },
    )
}

/// Fast `Ours` configuration with the predictor on: warm up on one real
/// route, then alternate predicted and routed iterations.
fn predict_cfg(max_route_iters: usize) -> RoutabilityConfig {
    let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    cfg.gp.max_iters = 120;
    cfg.max_route_iters = max_route_iters;
    cfg.gp_iters_per_route = 8;
    cfg.predict = Some(PredictConfig {
        warmup_routes: 1,
        ..PredictConfig::default()
    });
    cfg
}

/// The full predictor-enabled flow — features, RLS fit, prediction,
/// substitution — produces bit-identical results at 1 and 4 threads.
#[test]
fn predict_flow_is_thread_invariant_bitwise() {
    let cfg = predict_cfg(4);

    set_global_threads(1);
    let mut d1 = test_design(0x9e1);
    let r1 = run_flow_with(&mut d1, &cfg, FlowControl::default()).unwrap();

    set_global_threads(4);
    let mut d4 = test_design(0x9e1);
    let r4 = run_flow_with(&mut d4, &cfg, FlowControl::default()).unwrap();
    set_global_threads(1);

    assert!(
        r1.predicted_iterations >= 1,
        "the fast-path never substituted a predicted map"
    );
    assert_eq!(r1.predicted_iterations, r4.predicted_iterations);
    assert_eq!(r1.route_iterations, r4.route_iterations);
    assert_eq!(
        r1.hpwl.to_bits(),
        r4.hpwl.to_bits(),
        "HPWL differs between 1 and 4 threads: {} vs {}",
        r1.hpwl,
        r4.hpwl
    );
    assert_eq!(r1.density_overflow.to_bits(), r4.density_overflow.to_bits());
    assert_eq!(d1.positions(), d4.positions());
    // The per-iteration logs agree entirely, including which iterations
    // were predicted.
    assert_eq!(r1.log.len(), r4.log.len());
    for (a, b) in r1.log.iter().zip(&r4.log) {
        assert_eq!(a.predicted, b.predicted, "iter {} schedule differs", a.iter);
        assert_eq!(a.overflow.to_bits(), b.overflow.to_bits());
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
    }
}

/// An injected congestion spike — routed demand tripled after one real
/// route — must trip the drift gate: the flow records the fallback
/// warning and completes with full routing during the cooldown.
#[test]
fn drift_gate_falls_back_under_congestion_spike() {
    // The robustness idiom: a declarative plan, translated to a flow hook.
    let plan = FaultPlan::new(
        "congestion-spike",
        FaultKind::CongestionSpike { route_iter: 3 },
        FaultExpectation::RecoveredOk,
    );
    let fault = match plan.kind {
        FaultKind::CongestionSpike { route_iter } => FlowFault::CongestionSpike { route_iter },
        _ => unreachable!(),
    };

    let cfg = predict_cfg(5);
    let mut design = test_design(0x9e2);
    let report = run_flow_with(
        &mut design,
        &cfg,
        FlowControl {
            fault: Some(fault),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{} must complete: {e}", plan.name));

    assert!(report.hpwl.is_finite());
    let tripped = report
        .warnings
        .iter()
        .any(|w| w.to_string().contains("prediction drift"));
    assert!(
        tripped,
        "{}: expected a drift-gate warning, got {:?}",
        plan.name,
        report
            .warnings
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
    );
    // Iteration 3 itself is a real route (the spike strikes the router's
    // output), and the cooldown keeps iteration 4 real too.
    for l in &report.log {
        if l.iter == 3 || l.iter == 4 {
            assert!(!l.predicted, "iter {} should have routed", l.iter);
        }
    }
}

/// A run killed mid-warmup (after the first real route, before the model
/// ever substituted) and resumed from its checkpoint reproduces the
/// uninterrupted run bitwise — predictor state is part of the snapshot.
#[test]
fn checkpoint_resume_mid_warmup_is_bitwise_identical() {
    let mut cfg = predict_cfg(4);
    // Two-route warmup so the captured checkpoint is strictly mid-warmup.
    cfg.predict = Some(PredictConfig {
        warmup_routes: 2,
        ..PredictConfig::default()
    });

    let mut uninterrupted = test_design(0x9e3);
    let full = run_flow_with(&mut uninterrupted, &cfg, FlowControl::default()).unwrap();
    assert!(
        full.predicted_iterations >= 1,
        "warmup must complete and substitute at least once"
    );

    let mut captured: Option<Vec<u8>> = None;
    {
        let mut victim = test_design(0x9e3);
        let mut hook = |cp: &FlowCheckpoint| {
            if cp.next_route_iter == 2 && captured.is_none() {
                captured = Some(cp.to_bytes());
            }
        };
        run_flow_with(
            &mut victim,
            &cfg,
            FlowControl {
                on_checkpoint: Some(&mut hook),
                ..Default::default()
            },
        )
        .unwrap();
    }
    let bytes = captured.expect("no checkpoint captured at iteration 2");
    let checkpoint = FlowCheckpoint::from_bytes(&bytes).unwrap();
    assert!(
        checkpoint.predictor.as_ref().is_some_and(|p| p.fits() == 1),
        "checkpoint must carry the mid-warmup predictor (1 fit)"
    );

    let mut resumed_design = test_design(0x9e3);
    let resumed = run_flow_with(
        &mut resumed_design,
        &cfg,
        FlowControl {
            resume: Some(checkpoint),
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(resumed.resumed_from, Some(2));
    assert_eq!(resumed.predicted_iterations, full.predicted_iterations);
    assert_eq!(resumed.route_iterations, full.route_iterations);
    assert_eq!(
        resumed.hpwl.to_bits(),
        full.hpwl.to_bits(),
        "resumed HPWL differs: {} vs {}",
        resumed.hpwl,
        full.hpwl
    );
    assert_eq!(
        resumed.density_overflow.to_bits(),
        full.density_overflow.to_bits()
    );
    assert_eq!(resumed_design.positions(), uninterrupted.positions());
}

/// Degenerate scenario classes complete with the predictor enabled: the
/// zero-movable design takes the degraded path with a warning, and the
/// single-cell design finishes with finite results.
#[test]
fn degenerate_scenarios_complete_with_predict() {
    for name in ["all_fixed", "single_cell"] {
        let scenario = scenario_by_name(name).expect("known scenario");
        let mut d = scenario.build(Scale::Small);
        let mut cfg = RoutabilityConfig::preset_fast(PlacerPreset::Ours);
        cfg.predict = Some(PredictConfig {
            warmup_routes: 1,
            ..PredictConfig::default()
        });
        let report = run_flow_with(&mut d, &cfg, FlowControl::default())
            .unwrap_or_else(|e| panic!("{name} must complete with --predict: {e}"));
        assert!(report.hpwl.is_finite(), "{name}: non-finite HPWL");
        if name == "all_fixed" {
            assert_eq!(report.route_iterations, 0);
            assert!(
                !report.warnings.is_empty(),
                "{name}: degraded mode must warn"
            );
        }
    }
}
