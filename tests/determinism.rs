//! End-to-end determinism: the workspace-wide contract *same seed →
//! same design → same placement metrics*, enforced on the smallest
//! design of the synthetic suite.
//!
//! Every future performance or robustness PR regresses against this
//! test: any change that breaks bit-reproducibility of generation or
//! placement must be intentional and update the contract here.

use rdp::core::GlobalPlacer;
use rdp::db::DesignStats;
use rdp::gen::{generate, ispd2015_suite, GenParams, SuiteEntry};
use rdp::parse::write_bookshelf;

/// The smallest design of the 20-entry suite (by movable-cell count).
fn smallest_entry() -> SuiteEntry {
    ispd2015_suite()
        .into_iter()
        .min_by_key(|e| e.params.num_cells)
        .expect("suite is non-empty")
}

/// Same-seed generation is **byte-identical** across two runs: the full
/// Bookshelf serialization (nodes, nets, placements, rows, routing
/// grid, PG rails) of two independent generations compares equal.
#[test]
fn same_seed_generation_is_byte_identical() {
    let entry = smallest_entry();
    let a = generate(entry.name, &entry.params);
    let b = generate(entry.name, &entry.params);

    let fa = write_bookshelf(&a);
    let fb = write_bookshelf(&b);
    assert_eq!(fa.nodes, fb.nodes);
    assert_eq!(fa.nets, fb.nets);
    assert_eq!(fa.pl, fb.pl);
    assert_eq!(fa.scl, fb.scl);
    assert_eq!(fa.route, fb.route);
    assert_eq!(fa.pg, fb.pg);
}

/// Netlist statistics and post-global-placement HPWL/overflow agree to
/// the last ULP between two same-seed runs.
#[test]
fn same_seed_placement_metrics_identical_to_last_ulp() {
    let entry = smallest_entry();
    let mut a = generate(entry.name, &entry.params);
    let mut b = generate(entry.name, &entry.params);

    // Identical netlist stats before placement.
    assert_eq!(DesignStats::of(&a), DesignStats::of(&b));

    let sa = GlobalPlacer::default().place(&mut a).unwrap();
    let sb = GlobalPlacer::default().place(&mut b).unwrap();

    assert_eq!(sa.iterations, sb.iterations);
    // Bitwise comparison: `to_bits` distinguishes even -0.0 from 0.0, so
    // equality here means identical to the last ULP.
    assert_eq!(sa.hpwl.to_bits(), sb.hpwl.to_bits(), "hpwl differs");
    assert_eq!(
        sa.overflow.to_bits(),
        sb.overflow.to_bits(),
        "overflow differs"
    );
    assert_eq!(a.positions(), b.positions());
    assert_eq!(a.hpwl().to_bits(), b.hpwl().to_bits());
}

/// A different seed must actually change the generated design (guards
/// against the RNG being ignored).
#[test]
fn different_seed_changes_the_design() {
    let entry = smallest_entry();
    let a = generate(entry.name, &entry.params);
    let mut params2 = entry.params.clone();
    params2.seed ^= 0x5eed;
    let b = generate(entry.name, &params2);
    assert_ne!(a.hpwl().to_bits(), b.hpwl().to_bits());
}

/// Cross-version generator guard: pinned seeds still produce
/// **byte-identical** Bookshelf output. New `GenParams` scenario fields
/// must default off and draw from forked RNG streams, so extending the
/// generator never perturbs the PRNG stream of existing default configs.
/// If this fails, a code change silently re-rolled every existing
/// benchmark — update the goldens only for an intentional format or
/// generator change.
#[test]
fn pinned_seeds_match_golden_hashes() {
    const GOLDEN: [(&str, u64); 3] = [
        ("fft_a", 0xeacbadb764999341),
        ("des_perf_b", 0x51fd105ba1879dc2),
        ("pci_bridge32_a", 0x9524fd5e8dd2f923),
    ];
    for (name, want) in GOLDEN {
        let d = rdp::gen::generate_named(name).expect("suite design");
        let f = write_bookshelf(&d);
        let mut h = 0xcbf29ce484222325u64;
        for s in [&f.nodes, &f.nets, &f.pl, &f.scl, &f.route, &f.pg] {
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        assert_eq!(
            h, want,
            "{name}: Bookshelf output drifted from the golden hash"
        );
    }
}

/// Enabling a scenario extension must not perturb the base design: the
/// cells, base nets and placement of a design generated with hotspots /
/// obstructions / pitches enabled are a superset-compatible extension of
/// the default-off generation (same nodes and placement bytes).
#[test]
fn scenario_extensions_do_not_perturb_base_stream() {
    let base = GenParams {
        num_cells: 300,
        num_macros: 2,
        macro_fraction: 0.15,
        utilization: 0.55,
        io_terminals: 6,
        seed: 77,
        ..GenParams::default()
    };
    let extended = GenParams {
        hotspot_clusters: 2,
        global_net_frac: 0.2,
        obstruction_layers: 2,
        random_obstructions: 4,
        track_pitch: 0.4,
        ..base.clone()
    };
    let a = generate("ext", &base);
    let b = generate("ext", &extended);
    let fa = write_bookshelf(&a);
    let fb = write_bookshelf(&b);
    // Identical cell population and row structure...
    assert_eq!(fa.nodes, fb.nodes);
    assert_eq!(fa.scl, fb.scl);
    // ...and the base netlist is a prefix of the extended one.
    assert!(fb.nets.len() > fa.nets.len(), "extensions should add nets");
    let fa_body = fa.nets.lines().skip(3).collect::<Vec<_>>();
    let fb_body = fb.nets.lines().skip(3).collect::<Vec<_>>();
    assert_eq!(&fb_body[..fa_body.len()], &fa_body[..]);
    assert!(!b.obstructions().is_empty());
}

/// The determinism contract also holds for hand-rolled parameters (not
/// just suite entries), at a size small enough to exercise quickly.
#[test]
fn tiny_design_determinism() {
    let params = GenParams {
        num_cells: 250,
        num_macros: 1,
        macro_fraction: 0.1,
        utilization: 0.55,
        io_terminals: 6,
        rail_pitch: 1.0,
        seed: 0xD5,
        ..GenParams::default()
    };
    let mut a = generate("tiny", &params);
    let mut b = generate("tiny", &params);
    let sa = GlobalPlacer::default().place(&mut a).unwrap();
    let sb = GlobalPlacer::default().place(&mut b).unwrap();
    assert_eq!(sa.hpwl.to_bits(), sb.hpwl.to_bits());
    assert_eq!(sa.overflow.to_bits(), sb.overflow.to_bits());
    assert_eq!(a.positions(), b.positions());
}
