//! Service robustness suite: deterministic fault injection against
//! `rdp serve`, the crash-safe placement daemon.
//!
//! Each scenario is a [`FaultPlan`]-shaped contract from
//! `rdp-testkit` — the service descriptors ([`FaultKind::KillServer`],
//! [`FaultKind::GarbageFrame`], [`FaultKind::OversizedFrame`],
//! [`FaultKind::TruncatedFrame`], [`FaultKind::SlowClient`],
//! [`FaultKind::CorruptCheckpointByte`], [`FaultKind::TruncateBytes`])
//! are interpreted here as concrete attacks on a live server:
//!
//! * **kill-anywhere**: `kill -9` a real `rdp serve` process at staggered
//!   instants; after restarts the queue replays and every job's HPWL and
//!   positions are **bitwise** identical to an uninterrupted run.
//! * **hostile bytes**: corrupt/truncated job records and checkpoints are
//!   quarantined, torn `.tmp` files cleaned — recovery never panics.
//! * **hostile clients**: garbage, oversized, and truncated frames and
//!   slow-loris byte drips produce typed `Protocol` errors within the
//!   read deadline; the server survives every one of them.
//! * **bounded queue**: submits beyond the bound come back as typed
//!   `Busy { retry_after_ms }`, and cancelling frees the slot.
//! * **deadlines / cancel / drain**: budget expiry is a durable typed
//!   `Deadline` failure; cancel and graceful drain stop running jobs at
//!   their next checkpoint, and a drained job resumes bitwise.
//!
//! Nothing here is random: every fault is a deterministic function of
//! the plan, so a failing scenario replays exactly.

use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rdp::core::RdpError;
use rdp::obs::json;
use rdp::serve::protocol::{error_from_response, read_frame};
use rdp::serve::worker::reference_run;
use rdp::serve::{Client, FrameLimits, JobRecord, JobSpec, JobState, ServeConfig, Server, Store};
use rdp_testkit::{FaultExpectation, FaultKind, FaultPlan};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdp-serve-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The quick job every scenario that only needs *a* placement uses.
fn small_spec() -> JobSpec {
    JobSpec {
        input: "fft_1".into(),
        preset: "ours".into(),
        fast: true,
        gp_max_iters: Some(40),
        max_route_iters: Some(2),
        gp_iters_per_route: Some(4),
        ..JobSpec::default()
    }
}

/// A job long enough to be caught mid-run (cancel, drain, kill).
fn longer_spec() -> JobSpec {
    JobSpec {
        input: "fft_1".into(),
        preset: "ours".into(),
        fast: true,
        gp_max_iters: Some(80),
        max_route_iters: Some(4),
        gp_iters_per_route: Some(10),
        ..JobSpec::default()
    }
}

fn start(cfg: ServeConfig) -> (Server, Client) {
    let server = Server::start(cfg).expect("server start");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

/// Polls a job's status until `pred` holds, failing after `budget`.
fn poll_until(
    client: &Client,
    id: u64,
    budget: Duration,
    what: &str,
    pred: impl Fn(&rdp::serve::JobStatus) -> bool,
) -> rdp::serve::JobStatus {
    let start = Instant::now();
    loop {
        let status = client.status(id).expect("status");
        if pred(&status) {
            return status;
        }
        assert!(
            start.elapsed() < budget,
            "job {id} never reached `{what}` within {budget:?}; last state {}",
            status.state
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Sends raw bytes on a fresh connection and reads back one response
/// frame, rebuilding the typed error the server answered with.
fn raw_exchange(addr: &str, bytes: &[u8]) -> RdpError {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write raw bytes");
    stream.flush().expect("flush");
    let response = read_frame(&mut stream, &FrameLimits::default()).expect("read error frame");
    let v = json::parse(std::str::from_utf8(&response).expect("utf-8 response"))
        .expect("response JSON");
    assert_eq!(v.get("ok"), Some(&json::Value::Bool(false)));
    error_from_response(&v)
}

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// Hostile clients: every malformed frame is a typed error, the server
// survives, and no wait is unbounded.
// ---------------------------------------------------------------------

#[test]
fn garbage_frame_is_typed_protocol_error_and_server_survives() {
    let plan = FaultPlan::new(
        "garbage-frame",
        FaultKind::GarbageFrame,
        FaultExpectation::TypedError,
    );
    let root = tmp_root("garbage");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        ..ServeConfig::default()
    });
    let addr = server.local_addr().to_string();
    for payload in [
        &b"not json at all"[..],
        b"\xff\xfe\xfd\x00",
        b"{\"cmd\":42}",
    ] {
        let err = raw_exchange(&addr, &frame_bytes(payload));
        assert!(
            matches!(err, RdpError::Protocol { .. }),
            "{}: {payload:?} should be a typed protocol error, got {err}",
            plan.name
        );
    }
    // The server shrugged all of it off.
    client.ping().expect("server must survive garbage frames");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_frame_is_rejected_before_any_payload_is_read() {
    let plan = FaultPlan::new(
        "oversized-frame",
        FaultKind::OversizedFrame,
        FaultExpectation::TypedError,
    );
    let root = tmp_root("oversized");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        max_frame: 1024,
        ..ServeConfig::default()
    });
    // Claim 2 KiB against a 1 KiB limit and send not a single payload
    // byte: the rejection must come from the header alone.
    let header = 2048u32.to_le_bytes();
    let started = Instant::now();
    let err = raw_exchange(&server.local_addr().to_string(), &header);
    assert!(
        matches!(err, RdpError::Protocol { .. }) && err.to_string().contains("exceeds"),
        "{}: got {err}",
        plan.name
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "{}: rejection must not wait for payload bytes that never come",
        plan.name
    );
    client.ping().expect("server must survive oversized frames");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_frame_hits_the_read_deadline_not_a_hang() {
    let plan = FaultPlan::new(
        "truncated-frame",
        FaultKind::TruncatedFrame,
        FaultExpectation::TypedError,
    );
    let root = tmp_root("truncated-frame");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        io_timeout_ms: 300,
        ..ServeConfig::default()
    });
    // Header promises 64 bytes; only 8 ever arrive.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&64u32.to_le_bytes()).unwrap();
    stream.write_all(b"truncate").unwrap();
    stream.flush().unwrap();
    let started = Instant::now();
    let response = read_frame(&mut stream, &FrameLimits::default()).expect("error frame");
    let v = json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    let err = error_from_response(&v);
    assert!(
        matches!(err, RdpError::Protocol { .. }) && err.to_string().contains("deadline"),
        "{}: got {err}",
        plan.name
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "{}: the 300 ms read deadline must bound the wait",
        plan.name
    );
    client.ping().expect("server must survive truncated frames");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn slow_loris_client_cannot_hold_a_connection_open() {
    let plan = FaultPlan::new(
        "slow-client",
        FaultKind::SlowClient,
        FaultExpectation::TypedError,
    );
    let root = tmp_root("slow-client");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        io_timeout_ms: 300,
        ..ServeConfig::default()
    });
    // A perfectly valid ping, dripped one byte every 100 ms — the total
    // transfer would take ~1.8 s against a 300 ms per-frame deadline.
    let bytes = frame_bytes(b"{\"cmd\":\"ping\"}");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let started = Instant::now();
    let mut server_replied = Vec::new();
    for b in &bytes {
        if stream.write_all(std::slice::from_ref(b)).is_err() {
            break; // server already cut us off — that is the contract
        }
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(100));
        if started.elapsed() > Duration::from_secs(3) {
            break;
        }
        if let Ok(frame) = read_frame(
            &mut stream,
            &FrameLimits {
                max_frame: 1 << 20,
                io_timeout: Duration::from_millis(1),
            },
        ) {
            server_replied = frame;
            break;
        }
    }
    if server_replied.is_empty() {
        // The deadline error frame may still be in flight; collect it.
        if let Ok(frame) = read_frame(&mut stream, &FrameLimits::default()) {
            server_replied = frame;
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "{}: the drip must be cut near the 300 ms deadline, not tolerated",
        plan.name
    );
    if !server_replied.is_empty() {
        let v = json::parse(std::str::from_utf8(&server_replied).unwrap()).unwrap();
        let err = error_from_response(&v);
        assert!(
            matches!(err, RdpError::Protocol { .. }),
            "{}: got {err}",
            plan.name
        );
    }
    client
        .ping()
        .expect("server must survive slow-loris clients");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Bounded queue and deadlines.
// ---------------------------------------------------------------------

#[test]
fn queue_full_backpressure_frees_a_slot_on_cancel() {
    let root = tmp_root("backpressure");
    // No workers: the queue cannot drain on its own, making the bound
    // and its release deterministic.
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        max_queue: 1,
        retry_after_ms: 120,
        ..ServeConfig::default()
    });
    let first = client.submit(&small_spec()).expect("first submit fits");
    match client.submit(&small_spec()) {
        Err(RdpError::Busy { retry_after_ms, .. }) => {
            assert_eq!(retry_after_ms, 120, "Busy must carry the configured hint")
        }
        other => panic!("queue-full submit must be typed Busy, got {other:?}"),
    }
    // Cancelling the queued job frees its slot.
    client.cancel(first).expect("cancel queued");
    client
        .submit(&small_spec())
        .expect("slot freed by cancellation");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deadline_expiry_is_a_typed_durable_failure() {
    let root = tmp_root("deadline");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let id = client
        .submit(&JobSpec {
            deadline_ms: Some(0),
            ..small_spec()
        })
        .expect("submit");
    let err = client.wait(id, 10, 60_000).expect_err("budget of 0 ms");
    assert!(
        matches!(err, RdpError::Deadline { .. }),
        "expired job must fetch as a typed Deadline, got {err}"
    );
    let status = client.status(id).unwrap();
    assert_eq!(status.state, JobState::Failed);
    assert_eq!(
        status.error.as_ref().map(|(kind, _)| kind.as_str()),
        Some("deadline")
    );
    server.shutdown().unwrap();
    // Durable: the failure survives on disk, not just in memory.
    let store = Store::open(&root).unwrap();
    let rec = JobRecord::from_bytes(&std::fs::read(store.record_path(id)).unwrap()).unwrap();
    assert_eq!(rec.state, JobState::Failed);
    assert_eq!(
        rec.error.as_ref().map(|(k, _)| k.as_str()),
        Some("deadline")
    );
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Hostile bytes on disk: recovery quarantines, cleans, never panics.
// ---------------------------------------------------------------------

#[test]
fn corrupt_job_record_is_quarantined_at_startup() {
    let plan = FaultPlan::new(
        "corrupt-record",
        FaultKind::CorruptCheckpointByte { offset: 0 },
        FaultExpectation::TypedError,
    );
    let root = tmp_root("corrupt-record");
    let store = Store::open(&root).unwrap();
    store
        .persist_record(&JobRecord::queued(1, small_spec()))
        .unwrap();
    let healthy = JobRecord::queued(3, small_spec()).to_bytes();
    let mid = healthy.len() / 2;
    let corrupt = FaultKind::CorruptCheckpointByte { offset: mid }.mutate_bytes(&healthy);
    assert_ne!(
        corrupt, healthy,
        "{}: the fault must actually strike",
        plan.name
    );
    std::fs::write(store.record_path(3), &corrupt).unwrap();

    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        ..ServeConfig::default()
    });
    let recovery = server.recovery();
    assert_eq!(recovery.recovered, 1, "{}: {recovery:?}", plan.name);
    assert!(
        recovery
            .quarantined
            .iter()
            .any(|name| name == "job-0000000003.rdpjob"),
        "{}: {recovery:?}",
        plan.name
    );
    assert!(
        root.join("jobs/job-0000000003.rdpjob.corrupt").exists(),
        "{}: the corrupt record must be kept for forensics",
        plan.name
    );
    // The healthy job is intact, and the quarantined id is not reused in
    // a way that collides: the next id continues past the healthy max.
    assert_eq!(client.status_all().unwrap().len(), 1);
    assert_eq!(client.submit(&small_spec()).unwrap(), 2);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_checkpoint_restarts_the_job_fresh_and_bitwise() {
    let plan = FaultPlan::new(
        "truncated-checkpoint",
        FaultKind::TruncateBytes { keep: 6 },
        FaultExpectation::RecoveredOk,
    );
    let root = tmp_root("truncated-ckpt");
    let store = Store::open(&root).unwrap();
    store
        .persist_record(&JobRecord::queued(1, small_spec()))
        .unwrap();
    // A torn checkpoint: only the first bytes of the magic survive.
    let torn = plan
        .kind
        .mutate_bytes(b"RDPSNAP-would-have-been-a-checkpoint");
    store.persist_checkpoint(1, &torn).unwrap();

    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    assert!(
        server
            .recovery()
            .quarantined
            .iter()
            .any(|name| name == "job-0000000001.ckpt"),
        "{}: {:?}",
        plan.name,
        server.recovery()
    );
    assert!(root.join("jobs/job-0000000001.ckpt.corrupt").exists());
    // With the checkpoint quarantined the job restarts from scratch and
    // still lands on the uninterrupted run's exact bits.
    let outcome = client.wait(1, 20, 180_000).expect("job completes fresh");
    let (reference, _) = reference_run(&small_spec()).unwrap();
    assert_eq!(outcome.hpwl_bits, reference.hpwl.to_bits(), "{}", plan.name);
    assert_eq!(outcome.positions, reference.positions, "{}", plan.name);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn leftover_tmp_files_are_cleaned_at_startup() {
    let root = tmp_root("tmp-clean");
    let store = Store::open(&root).unwrap();
    store
        .persist_record(&JobRecord::queued(1, small_spec()))
        .unwrap();
    std::fs::write(root.join("jobs/job-0000000007.rdpjob.tmp"), b"torn write").unwrap();
    std::fs::write(root.join("jobs/job-0000000001.ckpt.tmp"), b"torn ckpt").unwrap();

    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        ..ServeConfig::default()
    });
    assert_eq!(server.recovery().cleaned_tmp, 2, "{:?}", server.recovery());
    assert!(!root.join("jobs/job-0000000007.rdpjob.tmp").exists());
    assert!(!root.join("jobs/job-0000000001.ckpt.tmp").exists());
    assert_eq!(client.status_all().unwrap().len(), 1);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Cancel and graceful drain.
// ---------------------------------------------------------------------

#[test]
fn cancel_running_job_stops_at_the_next_checkpoint() {
    let root = tmp_root("cancel-running");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let id = client.submit(&longer_spec()).expect("submit");
    poll_until(&client, id, Duration::from_secs(60), "running", |s| {
        s.state == JobState::Running
    });
    client.cancel(id).expect("cancel running");
    let terminal = poll_until(&client, id, Duration::from_secs(60), "terminal", |s| {
        s.state.is_terminal()
    });
    assert_eq!(terminal.state, JobState::Cancelled);
    let err = client.result(id, false).expect_err("cancelled result");
    assert!(matches!(err, RdpError::Cancelled { .. }), "{err}");
    server.shutdown().unwrap();
    // A cancelled job keeps no checkpoint around.
    let store = Store::open(&root).unwrap();
    assert!(!store.checkpoint_path(id).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn graceful_drain_requeues_the_running_job_and_it_resumes_bitwise() {
    let root = tmp_root("drain");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let id = client.submit(&longer_spec()).expect("submit");
    poll_until(&client, id, Duration::from_secs(60), "running", |s| {
        s.state == JobState::Running
    });
    // Drain: the worker stops at its next checkpoint, requeues the job
    // with the checkpoint persisted, and the whole queue is durable.
    server.shutdown().unwrap();
    let store = Store::open(&root).unwrap();
    let rec = JobRecord::from_bytes(&std::fs::read(store.record_path(id)).unwrap()).unwrap();
    assert_eq!(rec.state, JobState::Queued, "drain must requeue, not lose");
    assert!(
        store.checkpoint_path(id).exists(),
        "the requeued job must keep its checkpoint"
    );

    // A second incarnation resumes from the checkpoint and lands on the
    // uninterrupted run's exact bits.
    let (server2, client2) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    assert!(server2.recovery().recovered >= 1);
    let outcome = client2
        .wait(id, 20, 180_000)
        .expect("resumed job completes");
    let (reference, _) = reference_run(&longer_spec()).unwrap();
    assert_eq!(outcome.hpwl_bits, reference.hpwl.to_bits());
    assert_eq!(outcome.positions, reference.positions);
    server2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// The headline invariant: kill -9 anywhere, results stay bitwise.
// ---------------------------------------------------------------------

fn spawn_serve(bin: &str, dir: &Path, port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    Command::new(bin)
        .args([
            "serve",
            "--dir",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rdp serve")
}

fn read_port(port_file: &Path, child: &mut Child) -> String {
    let start = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_string();
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("rdp serve exited ({status}) before writing its port file");
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "rdp serve never wrote {}",
            port_file.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn kill_anywhere_queue_replays_and_results_stay_bitwise() {
    let kills = [
        FaultPlan::new(
            "kill-mid-first-job",
            FaultKind::KillServer { after_ms: 400 },
            FaultExpectation::RecoveredOk,
        ),
        FaultPlan::new(
            "kill-after-restart",
            FaultKind::KillServer { after_ms: 900 },
            FaultExpectation::RecoveredOk,
        ),
    ];
    let bin = env!("CARGO_BIN_EXE_rdp");
    let root = tmp_root("kill-anywhere");
    std::fs::create_dir_all(&root).unwrap();
    let port_file = root.join("serve.port");
    let store_dir = root.join("store");

    // Boot the first incarnation and enqueue two jobs.
    let mut child = spawn_serve(bin, &store_dir, &port_file);
    let addr = read_port(&port_file, &mut child);
    let client = Client::new(addr);
    client.ping().expect("first incarnation answers");
    let job_a = client.submit(&longer_spec()).expect("submit job A");
    let job_b = client.submit(&small_spec()).expect("submit job B");

    // kill -9 at each staggered instant, restarting in between. Whether
    // a kill lands mid-GP-burst, between checkpoints, mid-record-write,
    // or after a job already finished must not matter.
    for plan in &kills {
        let FaultKind::KillServer { after_ms } = plan.kind else {
            unreachable!()
        };
        std::thread::sleep(Duration::from_millis(after_ms));
        child
            .kill()
            .unwrap_or_else(|e| panic!("{}: kill: {e}", plan.name));
        child.wait().expect("reap killed server");
        child = spawn_serve(bin, &store_dir, &port_file);
        read_port(&port_file, &mut child);
    }

    // Final incarnation: let the replayed queue drain completely.
    let addr = read_port(&port_file, &mut child);
    let client = Client::new(addr);
    let outcome_a = client.wait(job_a, 25, 300_000).expect("job A completes");
    let outcome_b = client.wait(job_b, 25, 300_000).expect("job B completes");

    let (ref_a, _) = reference_run(&longer_spec()).unwrap();
    let (ref_b, _) = reference_run(&small_spec()).unwrap();
    assert_eq!(
        outcome_a.hpwl_bits,
        ref_a.hpwl.to_bits(),
        "job A HPWL must be bitwise identical to the uninterrupted run"
    );
    assert_eq!(outcome_a.positions, ref_a.positions);
    assert_eq!(
        outcome_b.hpwl_bits,
        ref_b.hpwl.to_bits(),
        "job B HPWL must be bitwise identical to the uninterrupted run"
    );
    assert_eq!(outcome_b.positions, ref_b.positions);

    client.shutdown().expect("graceful drain");
    child.wait().expect("server exits after drain");
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Live service telemetry: the stats/watch surface stays typed under
// abuse, and observing a job never changes its bits.
// ---------------------------------------------------------------------

use rdp::report::RunModel;
use rdp::serve::{validate_stats_json, WatchParams, PROTOCOL_VERSION};

#[test]
fn stats_snapshot_validates_and_counts_the_fleet() {
    let root = tmp_root("stats-snapshot");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let info = client.ping_info().expect("ping_info");
    assert_eq!(info.protocol_version, Some(PROTOCOL_VERSION));
    assert!(info.server_version.is_some(), "server must identify itself");
    let id = client.submit(&small_spec()).expect("submit");
    client.wait(id, 20, 180_000).expect("job completes");
    // `Client::stats` already runs the schema validator; re-run it on
    // the raw text to pin that the validator sees the exact wire bytes.
    let (text, summary) = client.stats().expect("stats");
    let revalidated = validate_stats_json(&text).expect("raw text validates");
    assert_eq!(revalidated, summary);
    assert_eq!(summary.jobs, 1, "one tracked job");
    let v = json::parse(&text).unwrap();
    let counters = v.get("service").and_then(|s| s.get("counters")).unwrap();
    let counter = |name: &str| counters.get(name).and_then(json::Value::as_f64);
    assert_eq!(counter("submits"), Some(1.0));
    assert_eq!(counter("completions"), Some(1.0));
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_watch_filters_are_typed_protocol_errors() {
    let root = tmp_root("watch-filter");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        ..ServeConfig::default()
    });
    let addr = server.local_addr().to_string();
    // 17 series names against the cap of 16.
    let names: Vec<String> = (0..17).map(|i| format!("\"s{i}\"")).collect();
    let too_many = format!("{{\"cmd\":\"watch\",\"series\":[{}]}}", names.join(","));
    let err = raw_exchange(&addr, &frame_bytes(too_many.as_bytes()));
    assert!(
        matches!(err, RdpError::Protocol { .. }) && err.to_string().contains("oversized"),
        "17 filters must be a typed oversized-filter error, got {err}"
    );
    // One 65-byte name against the 64-byte cap.
    let long = format!("{{\"cmd\":\"watch\",\"series\":[\"{}\"]}}", "n".repeat(65));
    let err = raw_exchange(&addr, &frame_bytes(long.as_bytes()));
    assert!(
        matches!(err, RdpError::Protocol { .. }) && err.to_string().contains("64-byte"),
        "a 65-byte name must be a typed error, got {err}"
    );
    client.ping().expect("server must survive hostile filters");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watch_long_poll_cap_answers_busy_with_the_retry_hint() {
    let root = tmp_root("watch-cap");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        retry_after_ms: 130,
        ..ServeConfig::default()
    });
    // Fleet watch on a silent server: the hold must end at wait_ms with
    // a typed Busy carrying the configured back-off hint.
    let started = Instant::now();
    let err = client
        .watch(&WatchParams {
            wait_ms: 250,
            ..WatchParams::default()
        })
        .expect_err("no activity inside the window");
    match err {
        RdpError::Busy { retry_after_ms, .. } => assert_eq!(retry_after_ms, 130),
        other => panic!("capped watch must be typed Busy, got {other:?}"),
    }
    let held = started.elapsed();
    assert!(
        held >= Duration::from_millis(250) && held < Duration::from_secs(5),
        "the hold must last ~wait_ms, not hang: {held:?}"
    );
    // A queued job (no workers) has no news either; same contract.
    let id = client.submit(&small_spec()).expect("submit");
    let err = client
        .watch(&WatchParams {
            id: Some(id),
            wait_ms: 100,
            ..WatchParams::default()
        })
        .expect_err("queued job has no news");
    assert!(matches!(err, RdpError::Busy { .. }), "{err}");
    // But fleet activity (the submit) IS news for a seq-0 watcher, and
    // wait_ms=0 must answer immediately.
    let v = client
        .watch(&WatchParams::default())
        .expect("submit counts as fleet activity");
    assert!(
        v.get("seq").and_then(json::Value::as_f64).unwrap_or(0.0) >= 1.0,
        "activity cursor must advance past the submit"
    );
    // Unknown job ids are typed errors, not hangs.
    let err = client
        .watch(&WatchParams {
            id: Some(999),
            ..WatchParams::default()
        })
        .expect_err("unknown id");
    assert!(matches!(err, RdpError::Protocol { .. }), "{err}");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stats_under_slot_exhaustion_is_busy_then_counts_the_rejections() {
    let root = tmp_root("stats-slots");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        workers: 0,
        max_connections: 1,
        ..ServeConfig::default()
    });
    // Hold the only slot open with an idle raw connection.
    let holder = TcpStream::connect(server.local_addr()).expect("holder connects");
    std::thread::sleep(Duration::from_millis(50));
    let err = client.stats().expect_err("no slot left for stats");
    assert!(
        matches!(err, RdpError::Busy { .. }),
        "slot exhaustion must be typed Busy, got {err}"
    );
    drop(holder);
    // With the slot free again, stats answers — and the snapshot itself
    // records the rejection it survived.
    // The release races the server's teardown of the holder's handler
    // thread: until it notices the closed socket, a fresh connect may
    // still bounce — as a clean Busy, or as a cut-off write if the
    // server closes while our request is in flight. Both are transient;
    // a slot must open well inside the deadline.
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        match client.stats() {
            Ok((text, _)) => break text,
            Err(e) if Instant::now() < deadline => {
                assert!(
                    matches!(e, RdpError::Busy { .. } | RdpError::Protocol { .. }),
                    "slot-release race must stay typed, got {e}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("stats after slot release: {e}"),
        }
    };
    let v = json::parse(&text).unwrap();
    let rejections = v
        .get("service")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("slot_rejections"))
        .and_then(json::Value::as_f64)
        .unwrap_or(0.0);
    assert!(rejections >= 1.0, "got {rejections} slot rejections");
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watch_on_a_job_terminating_mid_poll_returns_done() {
    let root = tmp_root("watch-terminal");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let id = client.submit(&longer_spec()).expect("submit");
    poll_until(&client, id, Duration::from_secs(60), "running", |s| {
        s.state == JobState::Running
    });
    // Cancel from a second thread while the watch below is parked on
    // the job: the settle must wake the watcher with `done:true`, well
    // before the wait_ms horizon.
    let canceller = {
        let client = client.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            client.cancel(id).expect("cancel running");
        })
    };
    let v = client
        .watch(&WatchParams {
            id: Some(id),
            wait_ms: 8_000,
            ..WatchParams::default()
        })
        .expect("watch returns when the job terminates");
    canceller.join().unwrap();
    assert_eq!(v.get("done"), Some(&json::Value::Bool(true)));
    assert_eq!(
        v.get("job")
            .and_then(|j| j.get("state"))
            .and_then(json::Value::as_str),
        Some("cancelled")
    );
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn observed_job_is_bitwise_identical_to_the_unobserved_run() {
    let root = tmp_root("observed-bitwise");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let spec = JobSpec {
        capture: true,
        ..longer_spec()
    };
    let id = client.submit(&spec).expect("submit");
    // Hammer the job with stats and watch polls for its whole lifetime:
    // snapshots, event deltas, and series tails all read-side only.
    let hammer = {
        let client = client.clone();
        std::thread::spawn(move || {
            let mut seq = 0u64;
            let mut after_step = None;
            let mut polls = 0u64;
            let mut series_points = 0u64;
            loop {
                let _ = client.stats().expect("stats under load");
                match client.watch(&WatchParams {
                    id: Some(id),
                    seq,
                    after_step,
                    series: vec!["hpwl".into(), "overflow".into()],
                    wait_ms: 50,
                }) {
                    Ok(v) => {
                        polls += 1;
                        if let Some(s) = v.get("seq").and_then(json::Value::as_f64) {
                            seq = s as u64;
                        }
                        if let Some(series) = v.get("job").and_then(|j| j.get("series")) {
                            if let Some(pts) = series
                                .get("hpwl")
                                .and_then(|s| s.get("points"))
                                .and_then(json::Value::as_arr)
                            {
                                series_points += pts.len() as u64;
                                if let Some(last) = pts.last().and_then(json::Value::as_arr) {
                                    after_step = last
                                        .first()
                                        .and_then(json::Value::as_f64)
                                        .map(|s| s as u64);
                                }
                            }
                        }
                        if v.get("done") == Some(&json::Value::Bool(true)) {
                            return (polls, series_points);
                        }
                    }
                    Err(RdpError::Busy { .. }) => {}
                    Err(e) => panic!("watch under load: {e}"),
                }
            }
        })
    };
    let outcome = client
        .wait(id, 20, 300_000)
        .expect("observed job completes");
    let (polls, series_points) = hammer.join().expect("hammer thread");
    assert!(polls >= 1, "the watcher must have seen at least one delta");
    assert!(
        series_points >= 1,
        "a captured job's convergence series must be visible mid-flight"
    );
    let (reference, _) = reference_run(&spec).unwrap();
    assert_eq!(
        outcome.hpwl_bits,
        reference.hpwl.to_bits(),
        "a stats/watch-hammered job must land on the unobserved run's exact bits"
    );
    assert_eq!(outcome.positions, reference.positions);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn service_session_export_is_ingestible_by_report() {
    let root = tmp_root("service-export");
    let (server, client) = start(ServeConfig {
        dir: root.clone(),
        ..ServeConfig::default()
    });
    let id = client.submit(&small_spec()).expect("submit");
    client.wait(id, 20, 180_000).expect("job completes");
    server.shutdown().unwrap();
    // The drain wrote `<dir>/service/{trace.jsonl,metrics.json}`; the
    // report model must load it exactly like a run directory.
    let model = RunModel::load(&root.join("service")).expect("service session loads");
    assert_eq!(model.counters.get("submits"), Some(&1.0));
    assert_eq!(model.counters.get("completions"), Some(&1.0));
    assert!(
        model.histograms.keys().any(|k| k == "op_submit_ms"),
        "op latency histograms must survive the export: {:?}",
        model.histograms.keys().collect::<Vec<_>>()
    );
    assert!(
        model.instants.iter().any(|i| i.name == "drain"),
        "the drain instant must be in the trace"
    );
    let _ = std::fs::remove_dir_all(&root);
}
