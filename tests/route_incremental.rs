//! Incremental-vs-full routing equivalence: the dirty-net rip-up path of
//! `rdp::route::IncrementalRouter` must never be observable in the routing
//! *results* — only in the work done.
//!
//! Contract under test (see `crates/route/src/incremental.rs`):
//!
//! * A first call (or any resync) is a plain full route — bitwise equal to
//!   `GlobalRouter` on the same design.
//! * An all-dirty incremental call executes the exact instruction sequence
//!   of a full route, so demand maps, congestion, wirelength and via
//!   totals are bitwise identical to routing the perturbed design from
//!   scratch.
//! * After any partial incremental call, replaying the committed routes
//!   into fresh maps reproduces the retained demand maps bit-for-bit
//!   (exact dyadic rip-up; `verify_consistency`).
//! * The whole incremental sequence is thread-count invariant, like every
//!   other kernel in the workspace.

use rdp::db::Point;
use rdp::gen::{scenario_by_name, Scale};
use rdp::par::set_global_threads;
use rdp::route::{GlobalRouter, IncrementalConfig, IncrementalRouter, RouteResult, RouterConfig};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Asserts two route results are bitwise identical (maps and totals).
fn assert_routes_bit_equal(a: &RouteResult, b: &RouteResult, what: &str) {
    assert_eq!(
        a.wirelength.to_bits(),
        b.wirelength.to_bits(),
        "{what}: wirelength"
    );
    assert_eq!(a.vias.to_bits(), b.vias.to_bits(), "{what}: vias");
    assert_eq!(a.maze_rerouted, b.maze_rerouted, "{what}: maze reroutes");
    assert_eq!(
        bits(a.maps.h_demand.as_slice()),
        bits(b.maps.h_demand.as_slice()),
        "{what}: h demand"
    );
    assert_eq!(
        bits(a.maps.v_demand.as_slice()),
        bits(b.maps.v_demand.as_slice()),
        "{what}: v demand"
    );
    assert_eq!(
        bits(a.maps.via_demand.as_slice()),
        bits(b.maps.via_demand.as_slice()),
        "{what}: via demand"
    );
    assert_eq!(
        bits(a.congestion.as_slice()),
        bits(b.congestion.as_slice()),
        "{what}: congestion"
    );
}

/// Deterministically nudge every movable cell (index-hashed offsets,
/// clamped inside the die).
fn perturb_all(design: &mut rdp::db::Design, amplitude: f64) {
    let die = design.die();
    let mut pos: Vec<Point> = design.positions().to_vec();
    for (i, p) in pos.iter_mut().enumerate() {
        if design.cell(rdp::db::CellId::from_index(i)).fixed {
            continue;
        }
        let dx = amplitude * (1.0 + (i % 5) as f64) / 5.0;
        let dy = amplitude * (1.0 + (i % 3) as f64) / 3.0;
        p.x = (p.x + if i % 2 == 0 { dx } else { -dx }).clamp(die.lo.x, die.hi.x);
        p.y = (p.y + if i % 4 < 2 { dy } else { -dy }).clamp(die.lo.y, die.hi.y);
    }
    design.set_positions(&pos);
}

/// Nudge a deterministic subset (`1 / stride` of the movable cells).
fn perturb_some(design: &mut rdp::db::Design, amplitude: f64, stride: usize) {
    let die = design.die();
    let mut pos: Vec<Point> = design.positions().to_vec();
    for (i, p) in pos.iter_mut().enumerate() {
        if i % stride != 0 || design.cell(rdp::db::CellId::from_index(i)).fixed {
            continue;
        }
        p.x = (p.x + amplitude).clamp(die.lo.x, die.hi.x);
        p.y = (p.y - amplitude).clamp(die.lo.y, die.hi.y);
    }
    design.set_positions(&pos);
}

/// A router config with the maze phase enabled, so the suite also covers
/// rip-up of maze-detoured segments (their steps must be stored and
/// subtracted exactly).
fn maze_router() -> GlobalRouter {
    GlobalRouter::new(RouterConfig {
        maze_rip_up: 50,
        ..RouterConfig::default()
    })
}

/// Incremental tuning that never resyncs on its own, so the tests below
/// exercise the genuine incremental path.
fn no_resync() -> IncrementalConfig {
    IncrementalConfig {
        move_threshold: 0.0,
        resync_every: 0,
        drift_frac: f64::INFINITY,
    }
}

/// First incremental call ≡ full route, across the scenario matrix's
/// routing-heavy classes (including the blockage maze and the
/// near-saturated core).
#[test]
fn first_call_matches_full_route_across_scenarios() {
    for name in [
        "baseline",
        "macro_obstructed",
        "obstruction_maze",
        "near_full_util",
    ] {
        let design = scenario_by_name(name)
            .expect("known scenario")
            .build(Scale::Small);
        let full = maze_router().route(&design);
        let mut inc = IncrementalRouter::new(maze_router(), IncrementalConfig::default());
        let first = inc.route(&design);
        let stats = inc.last_stats().expect("routed once");
        assert!(stats.full_resync, "{name}: first call must be a full route");
        assert_routes_bit_equal(&first, &full, name);
        assert!(inc.verify_consistency(), "{name}: replay mismatch");
    }
}

/// All-dirty incremental ≡ full route of the perturbed design: with every
/// net ripped up, the incremental call must walk the exact instruction
/// sequence of a from-scratch route.
#[test]
fn all_dirty_incremental_matches_full_route() {
    for name in ["baseline", "obstruction_maze"] {
        let mut design = scenario_by_name(name)
            .expect("known scenario")
            .build(Scale::Small);
        let mut inc = IncrementalRouter::new(maze_router(), no_resync());
        inc.route(&design);

        perturb_all(&mut design, 1.5);
        let incremental = inc.route(&design);
        let stats = inc.last_stats().expect("routed twice");
        assert!(
            !stats.full_resync,
            "{name}: all-dirty call must stay on the incremental path"
        );
        assert_eq!(
            stats.dirty_nets, stats.total_nets,
            "{name}: every net must be dirty after a global perturbation"
        );

        let full = maze_router().route(&design);
        assert_routes_bit_equal(&incremental, &full, name);
        assert!(inc.verify_consistency(), "{name}: replay mismatch");
    }
}

/// Partial perturbation: only a subset of nets is re-routed, the retained
/// maps still replay exactly from the committed routes, and a reset
/// returns to bitwise full-route agreement.
#[test]
fn partial_incremental_is_exact_and_reset_recovers_full() {
    let mut design = scenario_by_name("baseline")
        .expect("known scenario")
        .build(Scale::Small);
    let mut inc = IncrementalRouter::new(maze_router(), no_resync());
    inc.route(&design);

    perturb_some(&mut design, 2.0, 7);
    let r = inc.route(&design);
    let stats = inc.last_stats().expect("routed twice");
    assert!(!stats.full_resync);
    assert!(
        stats.dirty_nets < stats.total_nets,
        "a sparse perturbation must not dirty every net ({} / {})",
        stats.dirty_nets,
        stats.total_nets
    );
    assert!(
        stats.dirty_nets > 0,
        "perturbed cells must dirty their nets"
    );
    assert!(r.wirelength > 0.0);
    assert!(
        inc.verify_consistency(),
        "incremental maps drifted from the committed routes"
    );

    // Dropping the state makes the next call a full route again.
    inc.reset();
    let resynced = inc.route(&design);
    assert!(inc.last_stats().unwrap().full_resync);
    let full = maze_router().route(&design);
    assert_routes_bit_equal(&resynced, &full, "post-reset resync");
}

/// The periodic resync is an all-dirty route from fresh state: bitwise
/// equal to `GlobalRouter` on the same positions.
#[test]
fn periodic_resync_matches_full_route() {
    let mut design = scenario_by_name("baseline")
        .expect("known scenario")
        .build(Scale::Small);
    let mut inc = IncrementalRouter::new(
        maze_router(),
        IncrementalConfig {
            move_threshold: 0.0,
            resync_every: 2,
            drift_frac: f64::INFINITY,
        },
    );
    inc.route(&design); // full (first call)
    perturb_some(&mut design, 1.0, 5);
    inc.route(&design); // incremental
    assert!(!inc.last_stats().unwrap().full_resync);
    perturb_some(&mut design, 1.0, 3);
    let resynced = inc.route(&design); // periodic resync due
    assert!(
        inc.last_stats().unwrap().full_resync,
        "resync_every=2 must force a full route on the third call"
    );
    let full = maze_router().route(&design);
    assert_routes_bit_equal(&resynced, &full, "periodic resync");
}

/// Sub-threshold motion leaves the route untouched; drift accumulates
/// against the anchor and eventually crosses the threshold.
#[test]
fn move_threshold_filters_and_accumulates() {
    let mut design = scenario_by_name("baseline")
        .expect("known scenario")
        .build(Scale::Small);
    let mut inc = IncrementalRouter::new(
        maze_router(),
        IncrementalConfig {
            move_threshold: 1.0,
            resync_every: 0,
            drift_frac: f64::INFINITY,
        },
    );
    let before = inc.route(&design);

    // 0.4 um < threshold: nothing becomes dirty, so maps and totals are
    // unchanged. (`maze_rerouted` is a per-call work counter — a no-op
    // call legitimately reports 0 — so it is not compared here.)
    perturb_some(&mut design, 0.4, 1);
    let after = inc.route(&design);
    assert_eq!(inc.last_stats().unwrap().dirty_nets, 0);
    assert_eq!(after.wirelength.to_bits(), before.wirelength.to_bits());
    assert_eq!(after.vias.to_bits(), before.vias.to_bits());
    assert_eq!(
        bits(after.maps.h_demand.as_slice()),
        bits(before.maps.h_demand.as_slice())
    );
    assert_eq!(
        bits(after.maps.v_demand.as_slice()),
        bits(before.maps.v_demand.as_slice())
    );
    assert_eq!(
        bits(after.congestion.as_slice()),
        bits(before.congestion.as_slice())
    );

    // Another 0.8 um in the same direction: cumulative drift vs the
    // anchor is 1.2 um > threshold, so nets go dirty now.
    perturb_some(&mut design, 0.8, 1);
    inc.route(&design);
    assert!(
        inc.last_stats().unwrap().dirty_nets > 0,
        "accumulated drift must eventually dirty the nets"
    );
    assert!(inc.verify_consistency());
}

/// The incremental sequence (full → perturb → incremental) is thread-count
/// invariant, like every kernel behind it.
#[test]
fn incremental_sequence_thread_invariant() {
    let run = || {
        let mut design = scenario_by_name("baseline")
            .expect("known scenario")
            .build(Scale::Small);
        let mut inc = IncrementalRouter::new(maze_router(), no_resync());
        inc.route(&design);
        perturb_some(&mut design, 2.0, 4);
        let r = inc.route(&design);
        (r, inc.last_stats().unwrap())
    };

    set_global_threads(1);
    let (r1, s1) = run();
    set_global_threads(4);
    let (r4, s4) = run();
    set_global_threads(1);

    assert_eq!(s1, s4, "dirty-net accounting differs across thread counts");
    assert!(!s1.full_resync);
    assert_routes_bit_equal(&r1, &r4, "t1 vs t4");
}

/// Satellite of the serve PR: checkpoint/resume under `--incremental-route`
/// must be bitwise at any thread count. A checkpointed flow forces a full
/// resync at every checkpoint boundary (so a resumed run, whose router
/// state starts empty, walks the exact same all-dirty path), surfaces each
/// forced resync as a `route_resyncs` counter + `route_resync` instant,
/// and keeps the warning list identical between the uninterrupted and the
/// resumed run.
#[test]
fn checkpointed_incremental_flow_resumes_bitwise() {
    use rdp::core::{run_flow_with, FlowCheckpoint, FlowControl, PlacerPreset, RoutabilityConfig};
    use rdp::gen::{generate, GenParams};
    use rdp::obs::Collector;

    let mut cfg = RoutabilityConfig::preset(PlacerPreset::Ours);
    cfg.gp.max_iters = 120;
    cfg.max_route_iters = 3;
    cfg.gp_iters_per_route = 8;
    cfg.incremental_routing = true;
    let make = || {
        generate(
            "inc-resume",
            &GenParams {
                num_cells: 300,
                num_macros: 2,
                macro_fraction: 0.12,
                utilization: 0.6,
                congestion_margin: 0.8,
                io_terminals: 8,
                high_fanout_nets: 2,
                seed: 11,
                ..GenParams::default()
            },
        )
    };

    for threads in [1usize, 4] {
        set_global_threads(threads);

        // Uninterrupted checkpointed run, capturing the checkpoint at the
        // top of routability iteration 1 and the whole trace.
        let obs = Collector::enabled();
        let mut captured: Option<Vec<u8>> = None;
        let mut design = make();
        let mut hook = |cp: &FlowCheckpoint| {
            if cp.next_route_iter == 1 && captured.is_none() {
                captured = Some(cp.to_bytes());
            }
        };
        let full = run_flow_with(
            &mut design,
            &cfg,
            FlowControl {
                on_checkpoint: Some(&mut hook),
                obs: obs.clone(),
                ..Default::default()
            },
        )
        .unwrap();

        // Every checkpointed incremental iteration is a forced full
        // resync, each surfaced on the collector.
        let model = rdp::report::RunModel::from_collector(&obs).unwrap();
        assert_eq!(
            model.counters.get("route_resyncs").copied(),
            Some(full.route_iterations as f64),
            "threads={threads}: one surfaced resync per routability iteration"
        );
        assert!(
            model.instants.iter().any(|i| i.name == "route_resync"),
            "threads={threads}: route_resync instants missing from the trace"
        );

        // Resume from the captured checkpoint (with checkpointing still
        // on, as the service does) and compare bitwise.
        let cp = FlowCheckpoint::from_bytes(&captured.expect("no checkpoint captured")).unwrap();
        let mut resumed_design = make();
        let mut noop = |_cp: &FlowCheckpoint| {};
        let resumed = run_flow_with(
            &mut resumed_design,
            &cfg,
            FlowControl {
                resume: Some(cp),
                on_checkpoint: Some(&mut noop),
                ..Default::default()
            },
        )
        .unwrap();

        assert_eq!(resumed.resumed_from, Some(1), "threads={threads}");
        assert_eq!(
            resumed.hpwl.to_bits(),
            full.hpwl.to_bits(),
            "threads={threads}: resumed HPWL differs: {} vs {}",
            resumed.hpwl,
            full.hpwl
        );
        assert_eq!(
            resumed.density_overflow.to_bits(),
            full.density_overflow.to_bits(),
            "threads={threads}: resumed overflow differs"
        );
        assert_eq!(resumed.route_iterations, full.route_iterations);
        assert_eq!(
            resumed_design.positions(),
            design.positions(),
            "threads={threads}: resumed positions differ"
        );
        assert_eq!(
            resumed
                .warnings
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>(),
            full.warnings
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>(),
            "threads={threads}: warning parity broken between full and resumed runs"
        );
    }
    set_global_threads(1);
}
