#!/usr/bin/env bash
# Scenario-matrix gate: runs every scenario class (macro-obstructed,
# FPGA-style sites, high-Rent, near-full utilization, pin hotspots,
# single-row, obstruction maze, plus the degenerate survival classes)
# through the flow for the three Table-1 presets and checks, per class:
# LEF/DEF round-trip identity, flow survival, non-empty telemetry, and
# the DRV ordering Ours <= Xplace-Route <= Xplace within tolerance.
#
# Usage: scripts/matrix.sh [--full] [extra `rdp matrix` args...]
#   default   small instances, pinned seeds (~seconds; the CI fast tier)
#   --full    Table-1-sized instances (minutes; the nightly tier)
#
# Exits non-zero naming the violating class(es) on any gate failure.
set -euo pipefail
cd "$(dirname "$0")/.."

scale="small"
if [[ "${1:-}" == "--full" ]]; then
    scale="full"
    shift
fi

cargo run -q --release --offline --bin rdp -- matrix --scale "${scale}" "$@"
