#!/usr/bin/env bash
# Re-records the committed bench baselines in crates/bench/baselines/.
# Only run this when a commit intentionally changes performance — see
# crates/bench/baselines/README.md for the policy — and commit the
# updated JSON together with the change that motivated it.
#
# Usage: scripts/rebaseline.sh [suite ...]     (default: all gated suites)
#   RDP_REBASELINE_SAMPLES  samples per benchmark (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

samples="${RDP_REBASELINE_SAMPLES:-5}"
baselines="$PWD/crates/bench/baselines"
mkdir -p "$baselines"

suites=("$@")
if [[ ${#suites[@]} -eq 0 ]]; then
    suites=(kernels guard obs)
fi

for suite in "${suites[@]}"; do
    echo "==> rebaseline: bench $suite ($samples samples)"
    RDP_BENCH_DIR="$baselines" RDP_BENCH_SAMPLES="$samples" \
        cargo bench --offline -q -p rdp-bench --bench "$suite" >/dev/null
    echo "    wrote $baselines/BENCH_$suite.json"
done

echo "rebaseline: done — review the diff and commit with the motivating change"
