#!/usr/bin/env bash
# End-to-end crash-recovery smoke for `rdp serve`:
#
#   1. generate a 5k-cell Bookshelf design,
#   2. start a server, submit three identical captured jobs,
#   3. kill -9 the server the moment job 1 settles (job 2 is typically
#      mid-flow, job 3 still queued),
#   4. restart on the same store and wait for all three jobs,
#   5. assert the three results carry the *identical* HPWL bit pattern
#      (the kill-anywhere invariant: resumed == uninterrupted),
#   6. `rdp diff` job 1's captured run-dir against a direct
#      `rdp place --run-dir` with the same flags — QoR must match at
#      zero tolerance, and
#   7. scrape `rdp stats` mid-run and after the kill -9 restart: every
#      scrape is schema-validated by the client, and the lifetime
#      counters stay monotonic across the restart (terminal jobs are
#      re-counted exactly once, never doubled). `rdp top --iters 1`
#      renders a frame, and after the drain `rdp report` ingests the
#      exported service session.
#
# Exits non-zero on any violation. Wall-clock is a few seconds; ci.sh
# runs this after the test passes.
set -euo pipefail
cd "$(dirname "$0")/.."

RDP="${RDP:-target/release/rdp}"
if [[ ! -x "$RDP" ]]; then
    cargo build --release --offline --bin rdp
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/rdp-serve-smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    local code=$?
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    if [[ $code -ne 0 && -f "$WORK/serve.log" ]]; then
        echo "--- serve.log (tail) ---" >&2
        tail -n 20 "$WORK/serve.log" >&2 || true
    fi
    rm -rf "$WORK"
    exit $code
}
trap cleanup EXIT

# The flow knobs are shared verbatim between `rdp submit` and the direct
# `rdp place` so the run-dir diff compares identical configurations.
FLOW_FLAGS=(--preset ours --gp-iters 900 --max-route-iters 4 --gp-burst 80)
INPUT="bookshelf:$WORK/design:fft_1"

echo "serve-smoke: generating 5k-cell design"
"$RDP" generate fft_1 --out "$WORK/design" \
    --cells 5000 --seed 901 --util 0.88 --margin 0.72

start_server() {
    rm -f "$WORK/port"
    "$RDP" serve --dir "$WORK/store" --workers 1 --port-file "$WORK/port" \
        >>"$WORK/serve.log" 2>&1 &
    SERVER_PID=$!
    local tries=0
    until [[ -s "$WORK/port" ]]; do
        sleep 0.05
        tries=$((tries + 1))
        if [[ $tries -gt 200 ]]; then
            echo "serve-smoke: server never wrote its port file" >&2
            return 1
        fi
    done
    ADDR="$(tr -d '[:space:]' <"$WORK/port")"
}

submit_job() {
    "$RDP" submit "$ADDR" "$INPUT" --capture "${FLOW_FLAGS[@]}" |
        sed -n 's/^submitted job \([0-9][0-9]*\)$/\1/p'
}

# wait_done ID TIMEOUT_S: poll until the job's status line reads done.
wait_done() {
    local id=$1 deadline=$((SECONDS + $2))
    while ((SECONDS < deadline)); do
        if "$RDP" status "$ADDR" "$id" 2>/dev/null |
            grep -Eq "^job +$id +done"; then
            return 0
        fi
        sleep 0.1
    done
    echo "serve-smoke: timed out waiting for job $id" >&2
    "$RDP" status "$ADDR" >&2 || true
    return 1
}

echo "serve-smoke: starting server, submitting 3 jobs"
start_server
J1=$(submit_job)
J2=$(submit_job)
J3=$(submit_job)
[[ -n "$J1" && -n "$J2" && -n "$J3" ]] || {
    echo "serve-smoke: submit did not return job ids" >&2
    exit 1
}

wait_done "$J1" 120

# Every `rdp stats` call is schema-validated client-side before it
# prints; --json hands through the exact wire bytes for the asserts.
completions_now() {
    "$RDP" stats "$ADDR" --json |
        sed -n 's/.*"completions": *\([0-9][0-9]*\).*/\1/p' | head -n 1
}
echo "serve-smoke: scraping stats mid-run"
"$RDP" stats "$ADDR" --json >"$WORK/stats_mid.json"
grep -q '"stats_version":1' "$WORK/stats_mid.json" || {
    echo "serve-smoke: mid-run stats missing stats_version" >&2
    exit 1
}
MID_COMP=$(completions_now)
[[ "$MID_COMP" == "1" ]] || {
    echo "serve-smoke: expected 1 completion mid-run, got '$MID_COMP'" >&2
    exit 1
}

echo "serve-smoke: job $J1 done — kill -9 the server (job $J2 in flight)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "serve-smoke: restarting on the same store"
start_server
wait_done "$J2" 180
wait_done "$J3" 180

bits_of() {
    "$RDP" fetch "$ADDR" "$1" | grep -o 'bits 0x[0-9a-f]*' | head -n 1
}
B1=$(bits_of "$J1")
B2=$(bits_of "$J2")
B3=$(bits_of "$J3")
echo "serve-smoke: job $J1 $B1 / job $J2 $B2 / job $J3 $B3"
[[ -n "$B1" && "$B1" == "$B2" && "$B2" == "$B3" ]] || {
    echo "serve-smoke: HPWL bit patterns diverge across the kill" >&2
    exit 1
}

# Counter monotonicity across the kill: the restart re-counts job 1's
# terminal record exactly once, then jobs 2 and 3 settle live — so the
# lifetime completions counter must read exactly 3, not 4 (doubled J1)
# and not 2 (lost J1).
POST_COMP=$(completions_now)
[[ "$POST_COMP" == "3" ]] || {
    echo "serve-smoke: expected exactly 3 completions after restart, got '$POST_COMP'" >&2
    "$RDP" stats "$ADDR" >&2 || true
    exit 1
}
echo "serve-smoke: completions monotonic across restart ($MID_COMP -> $POST_COMP)"

echo "serve-smoke: rdp top renders one frame"
"$RDP" top "$ADDR" --iters 1 >"$WORK/top.txt"
grep -q "protocol v" "$WORK/top.txt" || {
    echo "serve-smoke: rdp top frame missing the server header" >&2
    cat "$WORK/top.txt" >&2 || true
    exit 1
}

"$RDP" shutdown "$ADDR"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "serve-smoke: report ingests the exported service session"
"$RDP" report "$WORK/store/service" --out "$WORK/service.html"
# Op latency histograms are process-lifetime: the final incarnation
# handled the post-restart stats scrapes, so that op must be in there.
grep -q "op_stats_ms" "$WORK/service.html" || {
    echo "serve-smoke: service report missing op latency histograms" >&2
    exit 1
}

echo "serve-smoke: direct rdp place with identical flags"
"$RDP" place "$INPUT" "${FLOW_FLAGS[@]}" --run-dir "$WORK/direct" \
    >"$WORK/place.log"

RUN_DIR="$WORK/store/jobs/$(printf 'job-%010d.run' "$J1")"
echo "serve-smoke: rdp diff served run-dir vs direct (QoR tol 0)"
"$RDP" diff "$RUN_DIR" "$WORK/direct" --qor-tol 0 --time-tol 1000000

echo "serve-smoke: PASS (kill -9 recovery bitwise, served == direct, telemetry monotonic)"
