#!/usr/bin/env bash
# Tier-1 gate for the rdp workspace. Must pass fully offline: the
# workspace has no external dependencies (see crates/testkit), so a
# clean checkout builds and tests without touching a registry.
#
# Usage: scripts/ci.sh [--workspace]
#   default      gate scope: root package tests only (tier-1)
#   --workspace  also run every member crate's tests and smoke-run
#                the bench binaries (slower, recommended before merge)
set -euo pipefail
cd "$(dirname "$0")/.."

scope=""
if [[ "${1:-}" == "--workspace" ]]; then
    scope="--workspace"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline ${scope}"
cargo test -q --offline ${scope}

if [[ -n "${scope}" ]]; then
    echo "==> bench smoke (cargo test --benches)"
    RDP_BENCH_SMOKE=1 cargo test -q --offline -p rdp-bench --benches
fi

echo "ci: all gates passed"
