#!/usr/bin/env bash
# Tier-1 gate for the rdp workspace. Must pass fully offline: the
# workspace has no external dependencies (see crates/testkit), so a
# clean checkout builds and tests without touching a registry.
#
# Usage: scripts/ci.sh [--workspace]
#   default      gate scope: root package tests only (tier-1)
#   --workspace  also run every member crate's tests and smoke-run
#                the bench binaries (slower, recommended before merge)
set -euo pipefail
cd "$(dirname "$0")/.."

scope=""
if [[ "${1:-}" == "--workspace" ]]; then
    scope="--workspace"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

# The parallelism contract (crates/par) promises bit-identical results
# for any worker count, so the whole test pass runs twice: once serial,
# once on 4 workers. A divergence fails the determinism suite.
echo "==> cargo test -q --offline ${scope}  (RDP_THREADS=1)"
RDP_THREADS=1 cargo test -q --offline ${scope}

echo "==> cargo test -q --offline ${scope}  (RDP_THREADS=4)"
RDP_THREADS=4 cargo test -q --offline ${scope}

if [[ -n "${scope}" ]]; then
    echo "==> bench smoke (cargo test --benches)"
    RDP_BENCH_SMOKE=1 cargo test -q --offline -p rdp-bench --benches
fi

# Observability gate: a traced 5k-cell flow with an injected fault must
# produce schema-valid JSONL/Chrome-trace/metrics exports covering every
# flow stage with warning parity between report and trace, plus a
# self-contained HTML report that passes rdp-report's validator with a
# congestion heatmap per routability iteration (obs_smoke exits non-zero
# otherwise), and tracing a 20k-cell GP step must cost < 3% over the
# untraced step (RDP_OBS_ASSERT=1 turns the budget into a hard failure;
# the measurements land in BENCH_obs.json).
echo "==> obs smoke (traced 5k-cell flow, exporter + HTML report validation)"
cargo run -q --release --offline -p rdp-bench --bin obs_smoke

echo "==> obs overhead gate (20k-cell GP step, < 6%)"
RDP_OBS_ASSERT=1 cargo bench --offline -p rdp-bench --bench obs

# Scenario-matrix gate (fast tier): every scenario class — adversarial
# generators and hand-built degenerates included — must round-trip
# through LEF/DEF, complete the flow under the three Table-1 presets
# plus the predictor-enabled ours+predict column with non-empty
# telemetry, and respect the DRV ordering
# Ours <= Xplace-Route <= Xplace (ours+predict included) within the
# per-class tolerance.
# Small instances with pinned seeds; the Table-1-sized matrix
# (scripts/matrix.sh --full) is the nightly tier and is not run here.
echo "==> scenario matrix gate (scripts/matrix.sh, small tier)"
scripts/matrix.sh

# Perf-regression gate: re-runs the baselined bench suites and compares
# median-of-N against crates/bench/baselines/ (bench_diff exits non-zero
# on a benchmark more than RDP_REGRESS_TOL slower than its baseline;
# the summary prints the per-kernel speedup vs the baseline). The
# tolerance is pinned explicitly here so the CI gate never silently
# drifts with a changed regress.sh default.
echo "==> perf regression gate (scripts/regress.sh, tol ${RDP_REGRESS_TOL:-0.5})"
RDP_REGRESS_TOL="${RDP_REGRESS_TOL:-0.5}" scripts/regress.sh

# Fault-injection pass: the robustness suites (FaultPlan scenarios,
# checkpoint corruption, kill-and-resume bitwise identity, and the
# serve-layer crash/corruption/deadline scenarios) and the router/placer
# property tests run with a pinned generator seed so a failure replays
# exactly, at both worker counts — resume must be bitwise under parallel
# reductions too.
echo "==> fault injection + robustness  (RDP_PROP_SEED=20250806, RDP_THREADS=1)"
RDP_PROP_SEED=20250806 RDP_THREADS=1 cargo test -q --offline --test robustness
RDP_PROP_SEED=20250806 RDP_THREADS=1 cargo test -q --offline --test serve_robustness
RDP_PROP_SEED=20250806 RDP_THREADS=1 cargo test -q --offline --test predict
RDP_PROP_SEED=20250806 RDP_THREADS=1 cargo test -q --offline -p rdp-route --test properties

echo "==> fault injection + robustness  (RDP_PROP_SEED=20250806, RDP_THREADS=4)"
RDP_PROP_SEED=20250806 RDP_THREADS=4 cargo test -q --offline --test robustness
RDP_PROP_SEED=20250806 RDP_THREADS=4 cargo test -q --offline --test serve_robustness
RDP_PROP_SEED=20250806 RDP_THREADS=4 cargo test -q --offline --test predict
RDP_PROP_SEED=20250806 RDP_THREADS=4 cargo test -q --offline -p rdp-route --test properties

# Service gate: kill -9 a live `rdp serve` mid-queue and restart — all
# jobs must finish with the identical HPWL bit pattern and a captured
# run-dir that diffs clean against a direct `rdp place` at zero QoR
# tolerance (scripts/serve_smoke.sh exits non-zero otherwise). Then the
# service-overhead budget: a 5k-cell job submit-to-result through the
# server must stay within 5% of the direct in-process flow
# (RDP_SERVE_ASSERT=1 turns the budget into a hard failure).
echo "==> serve smoke (kill -9 recovery, served == direct run-dir diff)"
scripts/serve_smoke.sh

# Predictor gate: a 5k-cell `--predict` run must substitute at least one
# predicted congestion map for a router invocation, diff clean against
# the plain run at the matched-QoR tolerance, and reproduce the final
# HPWL within 0.5% (scripts/predict_smoke.sh exits non-zero otherwise).
echo "==> predict smoke (learned congestion fast-path, matched QoR)"
scripts/predict_smoke.sh

echo "==> service overhead gate (5k-cell submit-to-result, < 5%)"
# Flush writeback first: the earlier gates write a lot, and a background
# flush stalls the served path's fsyncs while leaving the (fsync-free)
# direct path untouched — which would measure the disk backlog, not the
# service.
sync || true
RDP_SERVE_ASSERT=1 cargo bench --offline -p rdp-bench --bench guard

echo "ci: all gates passed"
