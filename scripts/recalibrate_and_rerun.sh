#!/bin/sh
# Recalibrates the suite's per-design congestion margins against the
# current code (placer + legalizer + evaluator), bakes them into
# rdp-gen's suite table, and regenerates Table I and Table II.
#
# Run this after any change that affects placement or evaluation
# behavior; see EXPERIMENTS.md "Calibration provenance".
set -e
cd /root/repo
cargo run --release -p rdp-bench --bin calibrate > results_calibrate.txt 2>&1
python3 - <<'PY'
import re
margins = {}
for line in open('results_calibrate.txt'):
    m = re.match(r'^(\w+)\s+([0-9.]+)\s+[0-9.]+\s+[0-9.]+\s+[0-9.]+\s*$', line)
    if m and m.group(1) != 'design':
        margins[m.group(1)] = float(m.group(2))
assert len(margins) == 20, margins
p = 'crates/gen/src/params.rs'
s = open(p).read()
for name, mg in margins.items():
    s = re.sub(r'entry\("%s", (\d+), (\d+), ([0-9.]+), [0-9.]+,' % name,
               r'entry("%s", \1, \2, \3, %.3f,' % (name, mg), s)
open(p, 'w').write(s)
print("margins baked:", margins)
PY
# tables.sh builds first and captures only the binaries' stdout, so the
# result files stay free of cargo build noise.
sh scripts/tables.sh
echo CHAIN_COMPLETE
