#!/usr/bin/env bash
# Regenerates the results_*.txt artifacts: Table I (with the per-stage
# time table appended via --profile), Table II, and the ablation sweep.
#
# The binaries are built *before* any redirection into the result files
# starts, so cargo's "Compiling/Finished/Running" progress can never
# leak into them — earlier regenerations piped `cargo run` with
# stderr+stdout merged and the results drifted with build noise.
# Each file holds exactly one binary's stdout.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building bench binaries (release, offline)"
cargo build --release --offline -p rdp-bench --bins

bin=target/release

echo "==> table1 --profile  -> results_table1.txt"
"$bin"/table1 --profile > results_table1.txt

echo "==> table2            -> results_table2.txt"
"$bin"/table2 > results_table2.txt

echo "==> ablation_sweep    -> results_ablation.txt"
"$bin"/ablation_sweep > results_ablation.txt

echo "tables: regenerated results_table1.txt results_table2.txt results_ablation.txt"
