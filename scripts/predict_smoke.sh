#!/usr/bin/env bash
# End-to-end smoke for the learned congestion fast-path (`--predict`):
#
#   1. generate a 5k-cell Bookshelf design,
#   2. run `rdp place` twice with identical flow flags — once plain,
#      once with `--predict` — each into a run directory,
#   3. assert the predict run substituted at least one predicted
#      congestion map for a router invocation (the fast-path actually
#      fired; an idle predictor would make this smoke a no-op), and
#   4. `rdp diff` the two run directories: the predict run's QoR must
#      match the full-routing run within the matched-QoR tolerance, and
#   5. the final HPWL of the two runs must agree within 0.5 % — the
#      headline matched-QoR claim, gated tighter than the mid-loop diff.
#
# The diff tolerance is deliberately looser than the serve smoke's zero:
# the predict run *intentionally* skips router invocations, so mid-loop
# proxy series (c_penalty, lambda1, gamma) follow a perturbed but
# convergent trajectory; what must hold is the final placement quality,
# which step 5 pins. The route-iteration cap is set below the design's
# natural convergence point so both runs execute the same number of
# routability iterations and the per-series last values compare like
# with like. Exits non-zero on any violation. Wall-clock is a few
# seconds; ci.sh runs this after the test passes.
set -euo pipefail
cd "$(dirname "$0")/.."

RDP="${RDP:-target/release/rdp}"
if [[ ! -x "$RDP" ]]; then
    cargo build --release --offline --bin rdp
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/rdp-predict-smoke.XXXXXX")"
cleanup() {
    local code=$?
    if [[ $code -ne 0 ]]; then
        for log in place-base.log place-predict.log; do
            if [[ -f "$WORK/$log" ]]; then
                echo "--- $log (tail) ---" >&2
                tail -n 20 "$WORK/$log" >&2 || true
            fi
        done
    fi
    rm -rf "$WORK"
    exit $code
}
trap cleanup EXIT

FLOW_FLAGS=(--preset ours --gp-iters 900 --max-route-iters 3 --gp-burst 80)
QOR_TOL="${RDP_PREDICT_QOR_TOL:-0.1}"
HPWL_TOL="${RDP_PREDICT_HPWL_TOL:-0.005}"
INPUT="bookshelf:$WORK/design:fft_1"

echo "predict-smoke: generating 5k-cell design"
"$RDP" generate fft_1 --out "$WORK/design" \
    --cells 5000 --seed 901 --util 0.88 --margin 0.72

echo "predict-smoke: baseline place (full routing every iteration)"
"$RDP" place "$INPUT" "${FLOW_FLAGS[@]}" --run-dir "$WORK/base" \
    >"$WORK/place-base.log"

echo "predict-smoke: place with --predict"
"$RDP" place "$INPUT" "${FLOW_FLAGS[@]}" \
    --predict --predict-warmup 1 \
    --run-dir "$WORK/predict" >"$WORK/place-predict.log"

# The fast-path must have fired: at least one iteration substituted a
# predicted congestion map for a router invocation.
SUBST=$(sed -n 's/.*"predict_substituted"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' \
    "$WORK/predict/metrics.json" | head -n 1)
if [[ -z "$SUBST" || "$SUBST" -lt 1 ]]; then
    echo "predict-smoke: no substituted route (predict_substituted=${SUBST:-absent})" >&2
    exit 1
fi
echo "predict-smoke: $SUBST router invocation(s) replaced by prediction"

echo "predict-smoke: rdp diff predict vs baseline (QoR tol $QOR_TOL)"
"$RDP" diff "$WORK/base" "$WORK/predict" --qor-tol "$QOR_TOL" --time-tol 1000000

# The headline matched-QoR gate: final HPWL within 0.5 %.
hpwl_of() {
    sed -n 's/.*"final_hpwl"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/p' "$1" | head -n 1
}
H_BASE=$(hpwl_of "$WORK/base/metrics.json")
H_PRED=$(hpwl_of "$WORK/predict/metrics.json")
if [[ -z "$H_BASE" || -z "$H_PRED" ]]; then
    echo "predict-smoke: final_hpwl gauge missing from a run" >&2
    exit 1
fi
awk -v a="$H_BASE" -v b="$H_PRED" -v tol="$HPWL_TOL" 'BEGIN {
    d = (b - a) / a; if (d < 0) d = -d;
    printf "predict-smoke: final HPWL %s vs %s (rel delta %.5f, tol %s)\n", a, b, d, tol;
    exit (d <= tol) ? 0 : 1;
}' || {
    echo "predict-smoke: final HPWL diverged beyond $HPWL_TOL" >&2
    exit 1
}

echo "predict-smoke: PASS (fast-path fired, QoR matched at tol $QOR_TOL)"
