#!/usr/bin/env bash
# Perf-regression gate: re-runs every baselined bench suite N times and
# compares the per-benchmark median-of-N against the committed baselines
# in crates/bench/baselines/ (see the README there for the policy).
#
# Usage: scripts/regress.sh
#   RDP_REGRESS_TOL     relative slowdown tolerance   (default 0.5 = 50%)
#   RDP_REGRESS_RUNS    fresh runs per suite          (default 3)
#   RDP_REGRESS_SAMPLES samples per benchmark per run (default 5)
#
# Exits non-zero (via bench_diff) when any benchmark's median-of-N is
# more than the tolerance slower than its baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

tol="${RDP_REGRESS_TOL:-0.5}"
runs="${RDP_REGRESS_RUNS:-3}"
samples="${RDP_REGRESS_SAMPLES:-5}"
baselines="$PWD/crates/bench/baselines"

if ! ls "$baselines"/BENCH_*.json >/dev/null 2>&1; then
    echo "regress: no baselines in $baselines — run scripts/rebaseline.sh first" >&2
    exit 1
fi

# Gate exactly the suites that have a committed baseline.
suites=()
for f in "$baselines"/BENCH_*.json; do
    name="$(basename "$f")"
    name="${name#BENCH_}"
    suites+=("${name%.json}")
done
echo "regress: gating suites: ${suites[*]} (tol ${tol}, ${runs} runs × ${samples} samples)"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

current_args=()
for ((run = 1; run <= runs; run++)); do
    dir="$scratch/run$run"
    mkdir -p "$dir"
    for suite in "${suites[@]}"; do
        echo "==> run $run/$runs: bench $suite"
        RDP_BENCH_DIR="$dir" RDP_BENCH_SAMPLES="$samples" \
            cargo bench --offline -q -p rdp-bench --bench "$suite" >/dev/null
    done
    current_args+=(--current "$dir")
done

cargo run -q --release --offline -p rdp-bench --bin bench_diff -- \
    --baseline "$baselines" "${current_args[@]}" --tol "$tol"
